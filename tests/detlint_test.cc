// detlint self-tests: every rule fires on its dirty fixture at the exact
// file:line, stays silent on its clean twin, and every suppression mechanism
// works. The final test runs the real analyzer + real config over the real
// tree and requires zero findings — the same gate the `detlint` CMake target
// and the CI lint job enforce, so a violation fails the unit suite too.
//
// DETLINT_SOURCE_ROOT is injected by tests/CMakeLists.txt.

#include "tools/detlint/rules.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "tools/detlint/config.h"
#include "tools/detlint/lexer.h"

namespace detlint {
namespace {

std::string FixtureRoot() {
  return std::string(DETLINT_SOURCE_ROOT) + "/tools/detlint/fixtures";
}

// Runs the analyzer over fixture files and reduces findings to (id, line).
std::vector<std::pair<std::string, int>> Lint(const std::vector<std::string>& files,
                                              const Config& config = Config()) {
  std::vector<std::pair<std::string, int>> out;
  for (const Finding& f : AnalyzeFiles(FixtureRoot(), files, config)) {
    EXPECT_NE(f.rule, nullptr) << f.file << ": " << f.message;
    if (f.rule != nullptr) {
      out.emplace_back(f.rule->id, f.line);
    }
  }
  return out;
}

using Expected = std::vector<std::pair<std::string, int>>;

TEST(DetlintRules, WallClockDirtyFiresPerSource) {
  EXPECT_EQ(Lint({"wall_clock_dirty.cc"}),
            (Expected{{"DL001", 9},
                      {"DL001", 10},
                      {"DL001", 11},
                      {"DL001", 12},
                      {"DL001", 13},
                      {"DL001", 14},
                      {"DL001", 15}}));
}

TEST(DetlintRules, WallClockCleanIsSilent) {
  EXPECT_EQ(Lint({"wall_clock_clean.cc"}), Expected{});
}

TEST(DetlintRules, WallClockConfigAllowlistSuppressesWholeFile) {
  Config config;
  std::string error;
  ASSERT_TRUE(config.Parse("[rule.wall-clock]\nallow = [\"wall_clock_dirty.cc\"]\n",
                           &error))
      << error;
  EXPECT_EQ(Lint({"wall_clock_dirty.cc"}, config), Expected{});
}

TEST(DetlintRules, AssertDirtyFires) {
  EXPECT_EQ(Lint({"assert_dirty.cc"}), (Expected{{"DL002", 5}}));
}

TEST(DetlintRules, AssertCleanIsSilent) {
  EXPECT_EQ(Lint({"assert_clean.cc"}), Expected{});
}

TEST(DetlintRules, UnorderedIterDirtyFiresOnBothLoopForms) {
  EXPECT_EQ(Lint({"unordered_iter_dirty.cc"}),
            (Expected{{"DL003", 10}, {"DL003", 13}}));
}

TEST(DetlintRules, UnorderedIterCleanIsSilent) {
  EXPECT_EQ(Lint({"unordered_iter_clean.cc"}), Expected{});
}

TEST(DetlintRules, UnorderedIterSuppressionsWithReasonSilence) {
  EXPECT_EQ(Lint({"unordered_iter_suppressed.cc"}), Expected{});
}

TEST(DetlintRules, SuppressionWithoutReasonDoesNotSuppress) {
  EXPECT_EQ(Lint({"unordered_iter_bad_suppression.cc"}), (Expected{{"DL003", 10}}));
}

TEST(DetlintRules, UnorderedMemberDeclaredInHeaderIterInCc) {
  // The member is declared in unordered_member.h; the loop lives in the .cc.
  // Both files must be in the batch for the cross-file seed to connect them.
  EXPECT_EQ(Lint({"unordered_member.h", "unordered_member.cc"}),
            (Expected{{"DL003", 7}}));
}

TEST(DetlintRules, PointerSortDirtyFires) {
  EXPECT_EQ(Lint({"pointer_sort_dirty.cc"}), (Expected{{"DL004", 12}}));
}

TEST(DetlintRules, PointerSortCleanIsSilent) {
  EXPECT_EQ(Lint({"pointer_sort_clean.cc"}), Expected{});
}

TEST(DetlintRules, ShuffleDirtyFires) {
  EXPECT_EQ(Lint({"shuffle_dirty.cc"}), (Expected{{"DL005", 8}}));
}

TEST(DetlintRules, ShuffleCleanIsSilent) {
  EXPECT_EQ(Lint({"shuffle_clean.cc"}), Expected{});
}

TEST(DetlintRules, PragmaOnceDirtyFiresAtLineOne) {
  EXPECT_EQ(Lint({"pragma_once_dirty.h"}), (Expected{{"DL006", 1}}));
}

TEST(DetlintRules, PragmaOnceCleanIsSilent) {
  EXPECT_EQ(Lint({"pragma_once_clean.h"}), Expected{});
}

TEST(DetlintRules, UsingNamespaceDirtyFires) {
  EXPECT_EQ(Lint({"using_namespace_dirty.h"}), (Expected{{"DL007", 6}}));
}

TEST(DetlintRules, UsingNamespaceCleanIsSilent) {
  EXPECT_EQ(Lint({"using_namespace_clean.h"}), Expected{});
}

TEST(DetlintRules, NakedNewDirtyFiresOnNewAndDelete) {
  EXPECT_EQ(Lint({"naked_new_dirty.cc"}), (Expected{{"DL008", 8}, {"DL008", 10}}));
}

TEST(DetlintRules, NakedNewCleanIsSilent) {
  EXPECT_EQ(Lint({"naked_new_clean.cc"}), Expected{});
}

TEST(DetlintRules, StdFunctionHotPathFiresOnParamAndAlias) {
  EXPECT_EQ(Lint({"src/vm/hot_fn_dirty.h"}), (Expected{{"DL009", 7}, {"DL009", 9}}));
}

TEST(DetlintRules, StdFunctionHotPathSuppressionSilences) {
  EXPECT_EQ(Lint({"src/vm/hot_fn_suppressed.h"}), Expected{});
}

TEST(DetlintRules, StdFunctionOutsideHotPathIsSilent) {
  EXPECT_EQ(Lint({"hot_fn_elsewhere.h"}), Expected{});
}

// ---- DL000: IO failures are findings under a real rule, not nullptr. ----

TEST(DetlintRules, UnreadableFileYieldsIoErrorFinding) {
  const std::vector<Finding> findings =
      AnalyzeFiles(FixtureRoot(), {"no_such_fixture.cc"}, Config());
  ASSERT_EQ(findings.size(), 1u);
  ASSERT_NE(findings[0].rule, nullptr);
  EXPECT_STREQ(findings[0].rule->id, "DL000");
  EXPECT_EQ(findings[0].rule->severity, Severity::kError);
  EXPECT_EQ(findings[0].line, 0);
  EXPECT_EQ(findings[0].file, "no_such_fixture.cc");
}

// ---- DL010: subsystem layering over the include graph. ----

Config LayeringConfig() {
  Config config;
  std::string error;
  // Multi-line array on purpose: the real detlint.toml writes the DAG this way.
  EXPECT_TRUE(config.Parse("[rule.subsystem-layering]\n"
                           "layers = [\n"
                           "  \"sim\",\n"
                           "  \"mem trace\",\n"
                           "  \"harness\",\n"
                           "]\n",
                           &error))
      << error;
  return config;
}

TEST(DetlintRules, LayeringBackEdgeFiresAtTheIncludeLine) {
  EXPECT_EQ(Lint({"src/sim/back_edge.cc", "src/harness/high.h"}, LayeringConfig()),
            (Expected{{"DL010", 2}}));
}

TEST(DetlintRules, LayeringDownwardEdgeIsClean) {
  EXPECT_EQ(Lint({"src/harness/uses_sim.cc", "src/sim/low.h"}, LayeringConfig()),
            Expected{});
}

TEST(DetlintRules, LayeringCycleFiresOnceAtTheSmallestFile) {
  EXPECT_EQ(Lint({"src/mem/cyc_a.h", "src/mem/cyc_b.h"}, LayeringConfig()),
            (Expected{{"DL010", 4}}));
}

TEST(DetlintRules, LayeringUnrankedSubsystemFires) {
  EXPECT_EQ(Lint({"src/rogue/lost.cc"}, LayeringConfig()), (Expected{{"DL010", 1}}));
}

TEST(DetlintRules, LayeringInlineSuppressionOnIncludeLineSilences) {
  EXPECT_EQ(Lint({"src/sim/back_edge_suppressed.cc", "src/harness/high.h"},
                 LayeringConfig()),
            Expected{});
}

TEST(DetlintRules, LayeringConfigAllowlistSilences) {
  Config config;
  std::string error;
  ASSERT_TRUE(config.Parse("[rule.subsystem-layering]\n"
                           "layers = [\"sim\", \"harness\"]\n"
                           "allow = [\"src/sim/back_edge.cc\"]\n",
                           &error))
      << error;
  EXPECT_EQ(Lint({"src/sim/back_edge.cc", "src/harness/high.h"}, config), Expected{});
}

TEST(DetlintRules, LayeringInertWithoutConfig) {
  // No layers declared: the same back-edge batch reports nothing.
  EXPECT_EQ(Lint({"src/sim/back_edge.cc", "src/harness/high.h"}), Expected{});
}

// ---- DL011: allocation in declared hot-path files. ----

Config HotPathConfig() {
  Config config;
  std::string error;
  EXPECT_TRUE(config.Parse("[rule.hot-path-alloc]\npaths = [\"src/vm/\"]\n", &error))
      << error;
  return config;
}

TEST(DetlintRules, HotPathAllocFiresOnEveryAllocationForm) {
  // new also fires DL008 (line 16, plus the delete on 18); both rules report.
  EXPECT_EQ(Lint({"src/vm/alloc_dirty.cc"}, HotPathConfig()),
            (Expected{{"DL011", 9},
                      {"DL011", 10},
                      {"DL011", 14},
                      {"DL011", 15},
                      {"DL008", 16},
                      {"DL011", 16},
                      {"DL008", 18}}));
}

TEST(DetlintRules, HotPathAllocCleanIsSilent) {
  EXPECT_EQ(Lint({"src/vm/alloc_clean.cc"}, HotPathConfig()), Expected{});
}

TEST(DetlintRules, HotPathAllocSameLineAndAboveLineSuppressionsSilence) {
  EXPECT_EQ(Lint({"src/vm/alloc_suppressed.cc"}, HotPathConfig()), Expected{});
}

TEST(DetlintRules, HotPathAllocConfigAllowlistSilences) {
  Config config;
  std::string error;
  ASSERT_TRUE(config.Parse("[rule.hot-path-alloc]\n"
                           "paths = [\"src/vm/\"]\n"
                           "allow = [\"src/vm/alloc_dirty.cc\"]\n"
                           "[rule.naked-new]\n"
                           "allow = [\"src/vm/alloc_dirty.cc\"]\n",
                           &error))
      << error;
  EXPECT_EQ(Lint({"src/vm/alloc_dirty.cc"}, config), Expected{});
}

TEST(DetlintRules, HotPathAllocInertOutsideDeclaredPaths) {
  // Same allocations, but the file is outside the configured path set: only
  // the always-on naked-new rule reports.
  Config config;
  std::string error;
  ASSERT_TRUE(config.Parse("[rule.hot-path-alloc]\npaths = [\"src/sim/\"]\n", &error))
      << error;
  EXPECT_EQ(Lint({"src/vm/alloc_dirty.cc"}, config),
            (Expected{{"DL008", 16}, {"DL008", 18}}));
}

// ---- DL012: observational purity of src/trace. ----

Config PurityConfig() {
  Config config;
  std::string error;
  EXPECT_TRUE(config.Parse("[rule.observational-purity]\n"
                           "paths = [\"src/trace/\"]\n"
                           "classes = [\"Machine\"]\n",
                           &error))
      << error;
  return config;
}

TEST(DetlintRules, PurityMutatorCallFromTraceFires) {
  // The mutator set is harvested from machine_api.h, a different file in the
  // batch — the cross-TU wiring, not just per-file matching.
  EXPECT_EQ(Lint({"src/trace/purity_dirty.cc", "src/harness/machine_api.h"},
                 PurityConfig()),
            (Expected{{"DL012", 7}}));
}

TEST(DetlintRules, PurityConstReadsAreClean) {
  EXPECT_EQ(Lint({"src/trace/purity_clean.cc", "src/harness/machine_api.h"},
                 PurityConfig()),
            Expected{});
}

TEST(DetlintRules, PuritySuppressionSilences) {
  EXPECT_EQ(Lint({"src/trace/purity_suppressed.cc", "src/harness/machine_api.h"},
                 PurityConfig()),
            Expected{});
}

TEST(DetlintRules, PurityConfigAllowlistSilences) {
  Config config;
  std::string error;
  ASSERT_TRUE(config.Parse("[rule.observational-purity]\n"
                           "paths = [\"src/trace/\"]\n"
                           "classes = [\"Machine\"]\n"
                           "allow = [\"src/trace/purity_dirty.cc\"]\n",
                           &error))
      << error;
  EXPECT_EQ(Lint({"src/trace/purity_dirty.cc", "src/harness/machine_api.h"}, config),
            Expected{});
}

TEST(DetlintRules, PurityMutatorCallOutsideTraceIsClean) {
  // The same call from a non-trace file is not a finding.
  EXPECT_EQ(Lint({"src/harness/machine_api.h"}, PurityConfig()), Expected{});
}

// ---- DL013: cross-TU dead symbols (warn tier). ----

Config DeadSymbolConfig() {
  Config config;
  std::string error;
  EXPECT_TRUE(config.Parse("[rule.dead-symbol]\npaths = [\"src/\"]\n", &error)) << error;
  return config;
}

TEST(DetlintRules, DeadSymbolFiresAtTheHeaderDeclaration) {
  EXPECT_EQ(Lint({"src/dead/api.h", "src/dead/api.cc"}, DeadSymbolConfig()),
            (Expected{{"DL013", 7}}));
}

TEST(DetlintRules, DeadSymbolIsWarnTier) {
  EXPECT_EQ(RuleById("DL013").severity, Severity::kWarn);
  EXPECT_EQ(RuleById("DL010").severity, Severity::kError);
  EXPECT_EQ(RuleById("DL011").severity, Severity::kError);
  EXPECT_EQ(RuleById("DL012").severity, Severity::kError);
}

TEST(DetlintRules, DeadSymbolSuppressionSilences) {
  EXPECT_EQ(Lint({"src/dead/api_suppressed.h"}, DeadSymbolConfig()), Expected{});
}

TEST(DetlintRules, DeadSymbolConfigAllowlistSilences) {
  Config config;
  std::string error;
  ASSERT_TRUE(config.Parse("[rule.dead-symbol]\n"
                           "paths = [\"src/\"]\n"
                           "allow = [\"src/dead/api.h\"]\n",
                           &error))
      << error;
  EXPECT_EQ(Lint({"src/dead/api.h", "src/dead/api.cc"}, config), Expected{});
}

TEST(DetlintRules, DeadSymbolInertWithoutConfig) {
  EXPECT_EQ(Lint({"src/dead/api.h", "src/dead/api.cc"}), Expected{});
}

// ---- Lexer: rule sites after multi-line raw strings keep exact lines. ----

TEST(DetlintLexer, RuleSiteAfterMultiLineRawStringHasExactLine) {
  EXPECT_EQ(Lint({"raw_string_lines.cc"}), (Expected{{"DL002", 9}}));
}

TEST(DetlintConfig, RejectsMalformedInput) {
  Config config;
  std::string error;
  EXPECT_FALSE(config.Parse("[trouble]\n", &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_FALSE(config.Parse("allow = [\"x\"]\n", &error));  // key outside section
  EXPECT_FALSE(config.Parse("[rule.a]\nallow = [\"unterminated\n", &error));
  EXPECT_FALSE(config.Parse("[rule.a]\nmystery = [\"x\"]\n", &error));
}

TEST(DetlintConfig, DirectoryAllowlistMatchesSubtree) {
  Config config;
  std::string error;
  ASSERT_TRUE(config.Parse("[rule.wall-clock]\nallow = [\"bench/\"]\n", &error)) << error;
  EXPECT_TRUE(config.IsPathAllowed("wall-clock", "bench/sim_throughput.cc"));
  EXPECT_TRUE(config.IsPathAllowed("wall-clock", "bench/sub/dir.cc"));
  EXPECT_FALSE(config.IsPathAllowed("wall-clock", "src/sim/event_queue.cc"));
  EXPECT_FALSE(config.IsPathAllowed("assert", "bench/sim_throughput.cc"));
}

TEST(DetlintConfig, RngTokensOverrideDefaults) {
  Config config;
  std::string error;
  ASSERT_TRUE(config.Parse("[rule.unseeded-shuffle]\nrng_tokens = [\"Entropy\"]\n",
                           &error))
      << error;
  ASSERT_EQ(config.RngTokens().size(), 1u);
  EXPECT_EQ(config.RngTokens()[0], "Entropy");
  const Config defaults;
  EXPECT_EQ(defaults.RngTokens().size(), 2u);
}

TEST(DetlintLexer, StringsCommentsAndRawStringsAreStripped) {
  const LexedFile file = Lex("strip.cc",
                             "// assert(1) in a comment\n"
                             "const char* s = \"assert(2) in a string\";\n"
                             "const char* r = R\"(assert(3) raw)\";\n"
                             "int after = 4;\n");
  for (const Token& tok : file.tokens) {
    EXPECT_NE(tok.text, "assert");
  }
  // The token after the raw string still carries the right line number.
  bool saw_after = false;
  for (const Token& tok : file.tokens) {
    if (tok.text == "after") {
      EXPECT_EQ(tok.line, 4);
      saw_after = true;
    }
  }
  EXPECT_TRUE(saw_after);
}

TEST(DetlintRules, AllRulesHaveStableIdsAndHints) {
  const auto& rules = AllRules();
  ASSERT_EQ(rules.size(), 14u);
  EXPECT_STREQ(rules.front().id, "DL000");
  EXPECT_STREQ(rules.back().id, "DL013");
  for (const RuleInfo& rule : rules) {
    EXPECT_NE(std::string(rule.name), "");
    EXPECT_NE(std::string(rule.hint), "");
  }
}

TEST(DetlintConfig, MultiLineArraysParse) {
  Config config;
  std::string error;
  ASSERT_TRUE(config.Parse("[rule.subsystem-layering]\n"
                           "layers = [\n"
                           "  \"common\",        # rank 0\n"
                           "  \"mem topology\",  # rank 1, shared\n"
                           "]\n",
                           &error))
      << error;
  ASSERT_EQ(config.Layers().size(), 2u);
  EXPECT_EQ(config.Layers()[0], "common");
  EXPECT_EQ(config.Layers()[1], "mem topology");
  EXPECT_FALSE(config.Parse("[rule.a]\nallow = [\n  \"never closed\",\n", &error));
}

TEST(DetlintConfig, ScanExcludeDropsSubtreeFromCollection) {
  Config config;
  std::string error;
  ASSERT_TRUE(config.Parse("[scan]\nexclude = [\"src/vm/\"]\n", &error)) << error;
  std::vector<std::string> files;
  ASSERT_TRUE(CollectSourceFiles(FixtureRoot(), {"src"}, config, &files, &error))
      << error;
  EXPECT_FALSE(files.empty());
  for (const std::string& f : files) {
    EXPECT_NE(f.rfind("src/vm/", 0), 0u) << f;
  }
  EXPECT_FALSE(config.Parse("[scan]\nmystery = [\"x\"]\n", &error));
}

// DESIGN.md section 7's rule table must match the registry row for row — the
// same table `detlint --list-rules` emits, so docs cannot drift silently.
TEST(DetlintDocs, DesignRuleTableMatchesRegistry) {
  std::ifstream in(std::string(DETLINT_SOURCE_ROOT) + "/DESIGN.md");
  ASSERT_TRUE(in.is_open());
  std::vector<std::pair<std::string, std::string>> doc_rows;  // (id, name)
  std::vector<std::string> doc_tiers;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("| DL", 0) != 0) {
      continue;
    }
    // | DL001 | wall-clock | error | ... |
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream row(line);
    while (std::getline(row, cell, '|')) {
      const size_t begin = cell.find_first_not_of(" \t");
      const size_t end = cell.find_last_not_of(" \t");
      cells.push_back(begin == std::string::npos
                          ? ""
                          : cell.substr(begin, end - begin + 1));
    }
    ASSERT_GE(cells.size(), 4u) << line;
    doc_rows.emplace_back(cells[1], cells[2]);
    doc_tiers.push_back(cells[3]);
  }
  const auto& rules = AllRules();
  ASSERT_EQ(doc_rows.size(), rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(doc_rows[i].first, rules[i].id);
    EXPECT_EQ(doc_rows[i].second, rules[i].name);
    EXPECT_EQ(doc_tiers[i],
              rules[i].severity == Severity::kError ? "error" : "warn");
  }
}

// The gate itself: the checked-in tree, linted with the checked-in config,
// has zero findings. Mirrors `cmake --build build --target detlint` and the
// CI lint job.
TEST(DetlintTree, CleanTreeHasZeroFindings) {
  const std::string root = DETLINT_SOURCE_ROOT;
  Config config;
  std::string error;
  ASSERT_TRUE(config.Load(root + "/tools/detlint/detlint.toml", &error)) << error;
  std::vector<std::string> files;
  ASSERT_TRUE(CollectSourceFiles(root, {"src", "bench", "tests", "examples", "tools"},
                                 config, &files, &error))
      << error;
  EXPECT_GT(files.size(), 100u);  // the whole surface, not a subset
  // The fixture corpus is intentionally dirty and must have been excluded.
  for (const std::string& f : files) {
    EXPECT_NE(f.rfind("tools/detlint/fixtures/", 0), 0u) << f;
  }
  // Zero findings of ANY severity: warn-tier sites are triaged (deleted or
  // annotated), never left to rot.
  const std::vector<Finding> findings = AnalyzeFiles(root, files, config);
  for (const Finding& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule->id << "] " << f.message;
  }
}

}  // namespace
}  // namespace detlint
