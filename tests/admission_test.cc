// Isolation tests for the AdmissionController: per-class backlog limits, the evacuation
// backlog override, per-source in-flight throttling, retire-underflow hardening, and the
// per-tenant QoS hook (consult order, argument forwarding, verdict propagation, admit
// charging).

#include <gtest/gtest.h>

#include <vector>

#include "src/migration/admission.h"

namespace chronotier {
namespace {

// Records every consult/charge and returns a scripted verdict.
class RecordingQosHook : public AdmissionQosHook {
 public:
  struct Consult {
    int32_t owner;
    MigrationClass klass;
    MigrationSource source;
    NodeId from;
    NodeId to;
    uint64_t pages;
    SimTime now;
  };
  struct Charge {
    int32_t owner;
    NodeId from;
    NodeId to;
    uint64_t pages;
    SimTime now;
  };

  MigrationRefusal QosCheck(int32_t owner, MigrationClass klass, MigrationSource source,
                            NodeId from, NodeId to, uint64_t pages, SimTime now) override {
    consults.push_back({owner, klass, source, from, to, pages, now});
    return verdict;
  }
  void QosAdmit(int32_t owner, NodeId from, NodeId to, uint64_t pages,
                SimTime now) override {
    charges.push_back({owner, from, to, pages, now});
  }

  MigrationRefusal verdict = MigrationRefusal::kNone;
  std::vector<Consult> consults;
  std::vector<Charge> charges;
};

class AdmissionTest : public ::testing::Test {
 protected:
  MigrationEngineConfig config_;
  AdmissionController controller_{&config_};
};

TEST_F(AdmissionTest, PerClassBacklogLimits) {
  // Each class refuses exactly past its own limit, not some shared scalar.
  const auto check = [&](MigrationClass klass, SimDuration backlog) {
    return controller_.Check(klass, MigrationSource::kPolicyDaemon, backlog, 1);
  };
  EXPECT_EQ(check(MigrationClass::kSync, config_.sync_slack), MigrationRefusal::kNone);
  EXPECT_EQ(check(MigrationClass::kSync, config_.sync_slack + 1),
            MigrationRefusal::kBacklog);
  EXPECT_EQ(check(MigrationClass::kAsync, config_.async_backlog_limit),
            MigrationRefusal::kNone);
  EXPECT_EQ(check(MigrationClass::kAsync, config_.async_backlog_limit + 1),
            MigrationRefusal::kBacklog);
  EXPECT_EQ(check(MigrationClass::kReclaim, config_.reclaim_backlog_limit),
            MigrationRefusal::kNone);
  EXPECT_EQ(check(MigrationClass::kReclaim, config_.reclaim_backlog_limit + 1),
            MigrationRefusal::kBacklog);
}

TEST_F(AdmissionTest, EvacuationBacklogOverride) {
  // A backlog that refuses daemon traffic still admits an evacuation drain, up to the
  // deeper evacuation limit.
  const SimDuration deep = config_.async_backlog_limit + 1;
  ASSERT_LE(deep, config_.evac_backlog_limit);
  EXPECT_EQ(controller_.Check(MigrationClass::kAsync, MigrationSource::kPolicyDaemon, deep, 1),
            MigrationRefusal::kBacklog);
  EXPECT_EQ(controller_.Check(MigrationClass::kAsync, MigrationSource::kEvacuation, deep, 1),
            MigrationRefusal::kNone);
  EXPECT_EQ(controller_.Check(MigrationClass::kAsync, MigrationSource::kEvacuation,
                              config_.evac_backlog_limit + 1, 1),
            MigrationRefusal::kBacklog);
}

TEST_F(AdmissionTest, PerSourceInflightThrottle) {
  config_.source_inflight_page_limit = 8;
  // First submission is never throttled (inflight == 0), even when oversized.
  EXPECT_EQ(controller_.Check(MigrationClass::kAsync, MigrationSource::kPolicyDaemon, 0, 16),
            MigrationRefusal::kNone);
  controller_.OnAdmit(MigrationSource::kPolicyDaemon, 6);
  EXPECT_EQ(controller_.Check(MigrationClass::kAsync, MigrationSource::kPolicyDaemon, 0, 2),
            MigrationRefusal::kNone);
  EXPECT_EQ(controller_.Check(MigrationClass::kAsync, MigrationSource::kPolicyDaemon, 0, 3),
            MigrationRefusal::kSourceThrottled);
  // Sources are independent ledgers: reclaim is unaffected by the daemon's backlog.
  EXPECT_EQ(controller_.Check(MigrationClass::kReclaim, MigrationSource::kReclaimDaemon, 0, 3),
            MigrationRefusal::kNone);
  // Retiring frees the budget again.
  controller_.OnRetire(MigrationSource::kPolicyDaemon, 6);
  EXPECT_EQ(controller_.Check(MigrationClass::kAsync, MigrationSource::kPolicyDaemon, 0, 3),
            MigrationRefusal::kNone);
  EXPECT_EQ(controller_.inflight_pages(MigrationSource::kPolicyDaemon), 0u);
}

TEST_F(AdmissionTest, RetireUnderflowIsFatal) {
  controller_.OnAdmit(MigrationSource::kPolicyDaemon, 2);
  EXPECT_DEATH({ controller_.OnRetire(MigrationSource::kPolicyDaemon, 3); },
               "admission retire underflow");
}

TEST_F(AdmissionTest, QosHookRunsLastAndPropagates) {
  RecordingQosHook hook;
  controller_.set_qos_hook(&hook);
  config_.source_inflight_page_limit = 8;

  // Global refusals short-circuit: the hook never sees a submission the backlog or
  // source throttle already refused.
  EXPECT_EQ(controller_.Check(MigrationClass::kAsync, MigrationSource::kPolicyDaemon,
                              config_.async_backlog_limit + 1, 1, /*owner=*/7),
            MigrationRefusal::kBacklog);
  controller_.OnAdmit(MigrationSource::kPolicyDaemon, 8, /*owner=*/7, 1, 0, 50);
  EXPECT_EQ(controller_.Check(MigrationClass::kAsync, MigrationSource::kPolicyDaemon, 0, 8,
                              /*owner=*/7),
            MigrationRefusal::kSourceThrottled);
  ASSERT_EQ(hook.consults.size(), 0u);
  ASSERT_EQ(hook.charges.size(), 1u);  // OnAdmit always charges the hook.
  EXPECT_EQ(hook.charges[0].owner, 7);
  EXPECT_EQ(hook.charges[0].pages, 8u);
  EXPECT_EQ(hook.charges[0].now, 50);
  controller_.OnRetire(MigrationSource::kPolicyDaemon, 8);

  // A submission that clears the global limits reaches the hook with its full context,
  // and the hook's verdict is the controller's verdict.
  EXPECT_EQ(controller_.Check(MigrationClass::kSync, MigrationSource::kFaultPath, 0, 4,
                              /*owner=*/3, /*from=*/1, /*to=*/0, /*now=*/99),
            MigrationRefusal::kNone);
  ASSERT_EQ(hook.consults.size(), 1u);
  EXPECT_EQ(hook.consults[0].owner, 3);
  EXPECT_EQ(hook.consults[0].klass, MigrationClass::kSync);
  EXPECT_EQ(hook.consults[0].source, MigrationSource::kFaultPath);
  EXPECT_EQ(hook.consults[0].from, 1);
  EXPECT_EQ(hook.consults[0].to, 0);
  EXPECT_EQ(hook.consults[0].pages, 4u);
  EXPECT_EQ(hook.consults[0].now, 99);

  hook.verdict = MigrationRefusal::kTenantQos;
  EXPECT_EQ(controller_.Check(MigrationClass::kSync, MigrationSource::kFaultPath, 0, 4,
                              /*owner=*/3, /*from=*/1, /*to=*/0, /*now=*/100),
            MigrationRefusal::kTenantQos);

  // Uninstalling restores the pre-tenant path.
  controller_.set_qos_hook(nullptr);
  EXPECT_EQ(controller_.Check(MigrationClass::kSync, MigrationSource::kFaultPath, 0, 4,
                              /*owner=*/3, /*from=*/1, /*to=*/0, /*now=*/101),
            MigrationRefusal::kNone);
  EXPECT_EQ(hook.consults.size(), 2u);
}

}  // namespace
}  // namespace chronotier
