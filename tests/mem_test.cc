// Unit tests for the memory-tier substrate.

#include <gtest/gtest.h>

#include "src/mem/tier.h"
#include "src/mem/tiered_memory.h"

namespace chronotier {
namespace {

TEST(TierSpecTest, FactoryLatencyOrdering) {
  const TierSpec dram = TierSpec::Dram(1000);
  const TierSpec pmem = TierSpec::OptanePmem(1000);
  const TierSpec cxl = TierSpec::CxlMemory(1000);
  EXPECT_LT(dram.load_latency, pmem.load_latency);
  EXPECT_LT(dram.store_latency, pmem.store_latency);
  // Optane's store penalty exceeds its load penalty (on-DIMM buffering asymmetry).
  EXPECT_GT(pmem.store_latency, pmem.load_latency);
  EXPECT_LT(cxl.load_latency, pmem.load_latency);
}

TEST(MemoryTierTest, AllocateRelease) {
  MemoryTier tier(TierSpec::Dram(1000));
  EXPECT_EQ(tier.free_pages(), 1000u);
  EXPECT_TRUE(tier.TryAllocate(100));
  EXPECT_EQ(tier.free_pages(), 900u);
  EXPECT_EQ(tier.used_pages(), 100u);
  tier.Release(100);
  EXPECT_EQ(tier.free_pages(), 1000u);
}

TEST(MemoryTierTest, MinWatermarkBlocksNormalAllocation) {
  MemoryTier tier(TierSpec::Dram(1000));
  const uint64_t min = tier.watermarks().min;
  EXPECT_GT(min, 0u);
  EXPECT_TRUE(tier.TryAllocate(1000 - min));
  EXPECT_FALSE(tier.TryAllocate(1));  // Would dip below min.
  EXPECT_TRUE(tier.TryAllocate(1, /*allow_below_min=*/true));
  EXPECT_EQ(tier.failed_allocations(), 1u);
}

TEST(MemoryTierTest, WatermarkOrdering) {
  MemoryTier tier(TierSpec::Dram(100000));
  const Watermarks& wm = tier.watermarks();
  EXPECT_LT(wm.min, wm.low);
  EXPECT_LT(wm.low, wm.high);
  EXPECT_GE(wm.pro, wm.high);
}

TEST(MemoryTierTest, ProWatermarkGap) {
  MemoryTier tier(TierSpec::Dram(100000));
  const uint64_t high = tier.watermarks().high;
  tier.SetProWatermarkGap(500);
  EXPECT_EQ(tier.watermarks().pro, high + 500);
  // Gap is capped at half the tier.
  tier.SetProWatermarkGap(1000000);
  EXPECT_LE(tier.watermarks().pro, 50000u + high);
}

TEST(MemoryTierTest, BelowWatermarkPredicates) {
  MemoryTier tier(TierSpec::Dram(1000));
  EXPECT_FALSE(tier.BelowHighWatermark());
  const uint64_t high = tier.watermarks().high;
  ASSERT_TRUE(tier.TryAllocate(1000 - high + 1, /*allow_below_min=*/true));
  EXPECT_TRUE(tier.BelowHighWatermark());
}

TEST(MemoryTierTest, AccessLatencyBySide) {
  MemoryTier pmem(TierSpec::OptanePmem(10));
  EXPECT_EQ(pmem.AccessLatency(false), pmem.spec().load_latency);
  EXPECT_EQ(pmem.AccessLatency(true), pmem.spec().store_latency);
}

TEST(MemoryTierTest, MigrationCopyTimeScalesWithBytes) {
  MemoryTier tier(TierSpec::Dram(10));
  const SimDuration one_page = tier.MigrationCopyTime(kBasePageSize);
  const SimDuration two_pages = tier.MigrationCopyTime(2 * kBasePageSize);
  EXPECT_GT(one_page, 0);
  EXPECT_NEAR(static_cast<double>(two_pages), 2.0 * static_cast<double>(one_page), 2.0);
}

TEST(TieredMemoryTest, DramOptaneSplit) {
  TieredMemory memory = TieredMemory::DramOptane(100000, 0.25);
  EXPECT_EQ(memory.num_nodes(), 2);
  EXPECT_EQ(memory.node(kFastNode).capacity_pages(), 25000u);
  EXPECT_EQ(memory.node(kSlowNode).capacity_pages(), 75000u);
  EXPECT_EQ(memory.total_capacity_pages(), 100000u);
}

TEST(TieredMemoryTest, AllocationPrefersFastThenFallsBack) {
  TieredMemory memory = TieredMemory::DramOptane(2000, 0.5);
  // Exhaust the fast tier (down to its min watermark).
  uint64_t fast_allocated = 0;
  while (memory.AllocatePage(kFastNode) == kFastNode) {
    ++fast_allocated;
  }
  EXPECT_GT(fast_allocated, 900u);
  // Next allocations land on the slow node.
  EXPECT_EQ(memory.AllocatePage(kFastNode), kSlowNode);
}

TEST(TieredMemoryTest, ExhaustionReturnsInvalid) {
  TieredMemory memory = TieredMemory::DramOptane(200, 0.5);
  int allocated = 0;
  while (memory.AllocatePage(kFastNode) != kInvalidNode) {
    ++allocated;
  }
  EXPECT_EQ(allocated, 200);  // Hard-allocation path drains both tiers fully.
  EXPECT_EQ(memory.AllocatePage(kFastNode), kInvalidNode);
}

TEST(TieredMemoryTest, FreeReturnsPages) {
  TieredMemory memory = TieredMemory::DramOptane(1000, 0.5);
  ASSERT_EQ(memory.AllocatePages(kSlowNode, 10), kSlowNode);
  EXPECT_EQ(memory.node(kSlowNode).used_pages(), 10u);
  memory.FreePages(kSlowNode, 10);
  EXPECT_EQ(memory.node(kSlowNode).used_pages(), 0u);
}

TEST(TieredMemoryTest, MigrationCostHasBothComponents) {
  TieredMemory memory = TieredMemory::DramOptane(1000, 0.5);
  const MigrationCost cost = memory.CostOfMigration(kSlowNode, kFastNode, kBasePageSize);
  EXPECT_GT(cost.copy_time, 0);
  EXPECT_GT(cost.software_overhead, 0);
  EXPECT_EQ(cost.total(), cost.copy_time + cost.software_overhead);
  // Copy time is bounded by the slower (Optane) side.
  const SimDuration slow_side =
      memory.node(kSlowNode).MigrationCopyTime(kBasePageSize);
  EXPECT_EQ(cost.copy_time, slow_side);
}

TEST(TieredMemoryTest, HugeUnitAllocation) {
  TieredMemory memory = TieredMemory::DramOptane(4096, 0.5);
  EXPECT_EQ(memory.AllocatePages(kFastNode, kBasePagesPerHugePage), kFastNode);
  EXPECT_EQ(memory.node(kFastNode).used_pages(), kBasePagesPerHugePage);
}

}  // namespace
}  // namespace chronotier
