// Unit tests for the discrete-event queue.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"

namespace chronotier {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.ScheduleAt(30, [&order](SimTime) { order.push_back(3); });
  queue.ScheduleAt(10, [&order](SimTime) { order.push_back(1); });
  queue.ScheduleAt(20, [&order](SimTime) { order.push_back(2); });
  queue.RunUntil(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.now(), 100);
}

TEST(EventQueueTest, SameTimeFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.ScheduleAt(50, [&order, i](SimTime) { order.push_back(i); });
  }
  queue.RunUntil(50);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, ClockAdvancesToEventTime) {
  EventQueue queue;
  SimTime seen = -1;
  queue.ScheduleAt(42, [&seen](SimTime now) { seen = now; });
  EXPECT_TRUE(queue.RunNext());
  EXPECT_EQ(seen, 42);
  EXPECT_EQ(queue.now(), 42);
  EXPECT_FALSE(queue.RunNext());
}

TEST(EventQueueTest, ScheduleAfterIsRelative) {
  EventQueue queue;
  queue.AdvanceTo(100);
  SimTime seen = 0;
  queue.ScheduleAfter(25, [&seen](SimTime now) { seen = now; });
  queue.RunUntil(200);
  EXPECT_EQ(seen, 125);
}

TEST(EventQueueTest, PeriodicFiresRepeatedly) {
  EventQueue queue;
  int fires = 0;
  queue.SchedulePeriodic(10, [&fires](SimTime) { ++fires; });
  queue.RunUntil(100);
  EXPECT_EQ(fires, 10);  // t = 10, 20, ..., 100.
}

TEST(EventQueueTest, CancelStopsPeriodic) {
  EventQueue queue;
  int fires = 0;
  const EventId id = queue.SchedulePeriodic(10, [&fires](SimTime) { ++fires; });
  queue.RunUntil(35);
  EXPECT_EQ(fires, 3);
  EXPECT_TRUE(queue.Cancel(id));
  queue.RunUntil(100);
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(queue.Cancel(id));
}

TEST(EventQueueTest, PeriodicCanCancelItself) {
  EventQueue queue;
  int fires = 0;
  EventId id = kInvalidEventId;
  id = queue.SchedulePeriodic(10, [&queue, &fires, &id](SimTime) {
    if (++fires == 3) {
      queue.Cancel(id);
    }
  });
  queue.RunUntil(200);
  EXPECT_EQ(fires, 3);
}

TEST(EventQueueTest, NextEventTimeSkipsCancelled) {
  EventQueue queue;
  const EventId early = queue.ScheduleAt(10, [](SimTime) {});
  queue.ScheduleAt(50, [](SimTime) {});
  EXPECT_EQ(queue.NextEventTime(), 10);
  queue.Cancel(early);
  EXPECT_EQ(queue.NextEventTime(), 50);
}

TEST(EventQueueTest, RunUntilDoesNotRunFutureEvents) {
  EventQueue queue;
  int fires = 0;
  queue.ScheduleAt(100, [&fires](SimTime) { ++fires; });
  queue.RunUntil(99);
  EXPECT_EQ(fires, 0);
  EXPECT_EQ(queue.now(), 99);
  queue.RunUntil(100);
  EXPECT_EQ(fires, 1);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue queue;
  std::vector<SimTime> times;
  queue.ScheduleAt(10, [&queue, &times](SimTime now) {
    times.push_back(now);
    queue.ScheduleAfter(5, [&times](SimTime inner) { times.push_back(inner); });
  });
  queue.RunUntil(100);
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(EventQueueTest, ScheduleInPastClampsToNow) {
  EventQueue queue;
  queue.AdvanceTo(100);
  SimTime seen = -1;
  queue.ScheduleAt(10, [&seen](SimTime now) { seen = now; });
  queue.RunUntil(100);
  EXPECT_EQ(seen, 100);
}

TEST(EventQueueTest, PendingCount) {
  EventQueue queue;
  EXPECT_EQ(queue.pending(), 0u);
  const EventId a = queue.ScheduleAt(10, [](SimTime) {});
  queue.SchedulePeriodic(10, [](SimTime) {});
  EXPECT_EQ(queue.pending(), 2u);
  queue.Cancel(a);
  EXPECT_EQ(queue.pending(), 1u);
}

}  // namespace
}  // namespace chronotier
