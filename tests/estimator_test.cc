// Tests for the Appendix B theory module, including parameterized property-style sweeps.

#include <gtest/gtest.h>

#include "src/core/estimator.h"

namespace chronotier {
namespace {

TEST(EstimatorTest, ClosedFormVariances) {
  // Appendix B.1, eq. 3 and eq. 6 with T0 = 1.
  EXPECT_DOUBLE_EQ(MeanEstimatorVariance(1.0, 1), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(MeanEstimatorVariance(1.0, 2), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(MaxEstimatorVariance(1.0, 1), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(MaxEstimatorVariance(1.0, 2), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(MaxEstimatorVariance(1.0, 3), 1.0 / 15.0);
}

TEST(EstimatorTest, MaxDominatesMeanForMultipleRounds) {
  for (int n = 2; n <= 32; ++n) {
    EXPECT_LT(MaxEstimatorVariance(2.5, n), MeanEstimatorVariance(2.5, n)) << n;
  }
}

TEST(EstimatorTest, PointEstimates) {
  const double samples[] = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(MeanEstimate(samples, 2), 4.0);       // (2/2)(1+3) = 4.
  EXPECT_DOUBLE_EQ(MaxEstimate(samples, 2), 4.5);        // (3/2)*3.
}

class EstimatorMonteCarloTest : public ::testing::TestWithParam<int> {};

TEST_P(EstimatorMonteCarloTest, BothEstimatorsUnbiased) {
  const int n = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(n));
  constexpr double kT0 = 7.0;
  const EstimatorMoments mean_mc = SimulateMeanEstimator(kT0, n, 100000, rng);
  const EstimatorMoments max_mc = SimulateMaxEstimator(kT0, n, 100000, rng);
  EXPECT_NEAR(mean_mc.mean, kT0, 0.1);
  EXPECT_NEAR(max_mc.mean, kT0, 0.1);
}

TEST_P(EstimatorMonteCarloTest, VarianceMatchesTheory) {
  const int n = GetParam();
  Rng rng(2000 + static_cast<uint64_t>(n));
  constexpr double kT0 = 7.0;
  const EstimatorMoments mean_mc = SimulateMeanEstimator(kT0, n, 200000, rng);
  const EstimatorMoments max_mc = SimulateMaxEstimator(kT0, n, 200000, rng);
  EXPECT_NEAR(mean_mc.variance, MeanEstimatorVariance(kT0, n),
              MeanEstimatorVariance(kT0, n) * 0.05);
  EXPECT_NEAR(max_mc.variance, MaxEstimatorVariance(kT0, n),
              MaxEstimatorVariance(kT0, n) * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Rounds, EstimatorMonteCarloTest, ::testing::Values(1, 2, 3, 5, 8));

TEST(EfficiencyTest, MisclassificationProbability) {
  // eq. 7: hot pages always qualify; cold pages qualify with probability (TH/T)^n.
  EXPECT_DOUBLE_EQ(HotMisclassificationProbability(0.5, 3), 1.0);
  EXPECT_DOUBLE_EQ(HotMisclassificationProbability(2.0, 1), 0.5);
  EXPECT_DOUBLE_EQ(HotMisclassificationProbability(2.0, 2), 0.25);
  EXPECT_DOUBLE_EQ(HotMisclassificationProbability(4.0, 2), 0.0625);
}

TEST(EfficiencyTest, UniformClosedFormPeaksAtTwo) {
  EXPECT_DOUBLE_EQ(UniformSelectionEfficiency(1), 0.0);
  EXPECT_DOUBLE_EQ(UniformSelectionEfficiency(2), 0.25);
  for (int n = 3; n <= 10; ++n) {
    EXPECT_LT(UniformSelectionEfficiency(n), 0.25) << n;
  }
}

TEST(EfficiencyTest, NumericMatchesClosedFormForUniform) {
  const auto uniform = [](double) { return 1.0; };
  for (int n = 2; n <= 6; ++n) {
    EXPECT_NEAR(SelectionEfficiency(uniform, n, 8192.0), UniformSelectionEfficiency(n), 1e-3)
        << n;
  }
}

TEST(EfficiencyTest, ColdMassDecreasesWithRounds) {
  const auto uniform = [](double) { return 1.0; };
  double previous = MissClassifiedColdMass(uniform, 2);
  for (int n = 3; n <= 8; ++n) {
    const double current = MissClassifiedColdMass(uniform, n);
    EXPECT_LT(current, previous);
    previous = current;
  }
}

class DensityFamilyTest : public ::testing::TestWithParam<double> {};

TEST_P(DensityFamilyTest, Normalized) {
  const HotnessDensity h(GetParam());
  // ∫_0^1 h = 1 by construction.
  const int steps = 1 << 14;
  double sum = 0;
  for (int i = 0; i < steps; ++i) {
    sum += h((i + 0.5) / steps);
  }
  EXPECT_NEAR(sum / steps, 1.0, 1e-3);
}

TEST_P(DensityFamilyTest, NonNegativeAndDecayingTail) {
  const HotnessDensity h(GetParam());
  EXPECT_GE(h(0.5), 0.0);
  EXPECT_GE(h(2.0), 0.0);
  // Cold-region density must decay (dense-hot / sparse-cold assumption). alpha = 1 is the
  // degenerate uniform case where the density is constant.
  if (GetParam() < 1.0) {
    EXPECT_GT(h(1.5), h(6.0));
  }
}

TEST_P(DensityFamilyTest, TwoRoundsOptimal) {
  const HotnessDensity h(GetParam());
  const auto density = [&h](double x) { return h(x); };
  const double e2 = SelectionEfficiency(density, 2, 64.0);
  for (int n = 3; n <= 7; ++n) {
    EXPECT_GT(e2, SelectionEfficiency(density, n, 64.0)) << "alpha=" << GetParam() << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, DensityFamilyTest,
                         ::testing::Values(0.3, 0.4, 0.5, 0.6, 0.75, 0.9, 1.0));

}  // namespace
}  // namespace chronotier
