// Access fast lane (software TLB) tests.
//
// The load-bearing claim: a run with the translation cache enabled is *bit-identical* to
// the same run with it disabled — same metrics, same migration commit sequence, same
// residency samples — because the fast lane replays exactly the slow path's tail for
// eligible units. The equivalence tests check that across the full policy lineup,
// including migration-heavy and fault-injected schedules. The stale-translation tests pin
// down the invalidation points individually: PROT_NONE poisoning must still fault, and a
// huge-group split must stop tail vpns from resolving to the stale group head.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/core/standard_policies.h"
#include "src/harness/experiment.h"
#include "src/harness/machine.h"
#include "src/vm/translation_cache.h"
#include "src/workloads/patterns.h"
#include "src/workloads/pmbench.h"
#include "src/workloads/trace.h"
#include "tests/experiment_result_testutil.h"

namespace chronotier {
namespace {

ScanGeometry FastGeometry() {
  ScanGeometry geometry;
  geometry.scan_period = 2 * kSecond;
  geometry.scan_step_pages = 512;
  return geometry;
}

ExperimentConfig SmallExperiment() {
  ExperimentConfig config;
  config.total_pages = 16384;  // 64 MB machine, 16 MB DRAM.
  config.bandwidth_scale = 256.0;
  config.warmup = 6 * kSecond;
  config.measure = 6 * kSecond;
  config.residency_sample_interval = 2 * kSecond;  // Compare time series too.
  return config;
}

std::vector<ProcessSpec> GaussianProcs(int count, double read_ratio = 0.95,
                                       uint64_t ws_pages = 6144) {
  PmbenchConfig w;
  w.working_set_bytes = ws_pages * kBasePageSize;
  w.read_ratio = read_ratio;
  w.per_op_delay = kMicrosecond;
  w.sequential_init = true;
  std::vector<ProcessSpec> procs;
  for (int i = 0; i < count; ++i) {
    procs.push_back({"pm", [w] { return std::make_unique<PmbenchStream>(w); }});
  }
  return procs;
}

// Runs one config twice — fast lane on and off — and requires identical results. Also
// checks the TLB actually participated in the enabled run (the equivalence would be
// vacuous if the fast lane never engaged).
void ExpectTlbEquivalence(ExperimentConfig config, const NamedPolicyFactory& named,
                          const std::vector<ProcessSpec>& procs) {
  config.enable_translation_cache = false;
  const ExperimentResult off = Experiment::Run(config, named.make, procs);

  config.enable_translation_cache = true;
  Machine::TlbCounters counters;
  const ExperimentResult on = Experiment::Run(
      config, named.make, procs, nullptr,
      [&counters](Machine& machine, ExperimentResult&) { counters = machine.TlbStats(); });

  ExpectResultsIdentical(on, off, "policy=" + named.name);
  // Every policy takes the fast lane now, including PEBS-driven Memtis: the sampler's
  // per-access charge is replayed inside FastPathAccess, so an active sampler no longer
  // forces the slow path. The equivalence above would be vacuous otherwise.
  EXPECT_GT(counters.hits, 0u) << named.name << ": fast lane never engaged";
}

TEST(TlbEquivalenceTest, AllPoliciesMatchWithTlbOff) {
  for (const auto& named : StandardPolicySet(FastGeometry())) {
    ExpectTlbEquivalence(SmallExperiment(), named, GaussianProcs(2));
  }
}

TEST(TlbEquivalenceTest, NTierTopologyMatchesWithTlbOff) {
  // N-endpoint CXL topology: hop penalties and per-endpoint congestion delays are charged
  // on both the fast lane and the slow path with identical arguments, so the bit-identity
  // contract must survive a machine where every access may queue.
  ExperimentConfig config = SmallExperiment();
  config.topology.tree = "(1,(2,4),(3,5))";
  config.topology.capacity_pages = {4096, 3072, 3072, 3072, 3072};
  for (const auto& named : TopologyPolicySet(FastGeometry())) {
    if (named.name == "Chrono" || named.name == "Memtis" ||
        named.name == "endpoint_aware_hotness") {
      ExpectTlbEquivalence(config, named, GaussianProcs(2));
    }
  }
}

TEST(TlbEquivalenceTest, SegmentedAddressSpace) {
  // Many-VMA address space (the shape sim_throughput measures): translations span 12
  // regions per process and region-hopping defeats the last-hit VMA cache, so the fast
  // lane carries almost every access. Must still be bit-identical to TLB-off.
  std::vector<ProcessSpec> procs;
  SegmentedConfig w;
  w.working_set_bytes = 6144 * kBasePageSize;
  w.segments = 12;
  w.read_ratio = 0.9;
  w.per_op_delay = kMicrosecond;
  w.sequential_init = true;
  for (int i = 0; i < 2; ++i) {
    procs.push_back({"seg", [w] { return std::make_unique<SegmentedStream>(w); }});
  }
  for (const auto& named : StandardPolicySet(FastGeometry())) {
    if (named.name == "Chrono" || named.name == "TPP") {
      ExpectTlbEquivalence(SmallExperiment(), named, procs);
    }
  }
}

TEST(TlbEquivalenceTest, MigrationHeavySchedule) {
  // Write-heavy working set larger than DRAM: constant promotion/demotion churn plus
  // dirty-abort pressure — every migration-driven invalidation path fires.
  ExperimentConfig config = SmallExperiment();
  config.total_pages = 8192;  // 32 MB machine, 8 MB DRAM; the 12 MB x2 set thrashes it.
  for (const std::string name : {"Chrono", "TPP", "Linux-NB"}) {
    for (const auto& named : StandardPolicySet(FastGeometry())) {
      if (named.name == name) {
        ExpectTlbEquivalence(config, named,
                             GaussianProcs(2, /*read_ratio=*/0.3, /*ws_pages=*/3072));
      }
    }
  }
}

TEST(TlbEquivalenceTest, FaultInjectedSchedule) {
  // Chaos plan: copy faults park transactions and quarantine frames, pressure spikes force
  // emergency reclaim (demotions under degraded watermarks), alloc-fail windows refuse
  // demand faults. All of it must replay identically through the fast lane.
  ExperimentConfig config = SmallExperiment();
  config.fault.enabled = true;
  config.fault.seed = 11;
  config.fault.start_after = kSecond;
  config.fault.copy_fail_transient_p = 0.05;
  config.fault.copy_fail_persistent_p = 0.002;
  config.fault.pressure_period = 1500 * kMillisecond;
  config.fault.pressure_fire_p = 0.8;
  config.fault.pressure_duration = 100 * kMillisecond;
  config.fault.pressure_fraction = 0.08;
  config.fault.alloc_fail_period = 1900 * kMillisecond;
  config.fault.alloc_fail_fire_p = 0.8;
  config.fault.alloc_fail_duration = 50 * kMillisecond;
  config.audit_period = 500 * kMillisecond;
  for (const auto& named : StandardPolicySet(FastGeometry())) {
    if (named.name == "Chrono" || named.name == "Multi-Clock") {
      ExpectTlbEquivalence(config, named, GaussianProcs(2, /*read_ratio=*/0.5));
    }
  }
}

// --- Stale-translation unit tests ---

class NullPolicy : public TieringPolicy {
 public:
  std::string_view name() const override { return "null"; }
  void Attach(Machine&) override {}
  SimDuration OnHintFault(Process&, Vma&, PageInfo&, bool, SimTime) override { return 0; }
};

// A trace that touches the same few pages over and over: each revisit after the first is a
// guaranteed fast-lane hit (until something invalidates the translation). `first` lets the
// huge-split test touch only tail pages (offset 0 is the group head's own base page).
Trace LoopTrace(uint64_t pages, uint64_t touched, int rounds, uint64_t first = 0) {
  Trace trace;
  trace.set_working_set_bytes(pages * kBasePageSize);
  for (int r = 0; r < rounds; ++r) {
    for (uint64_t p = first; p < first + touched; ++p) {
      MemOp op;
      op.vaddr = p * kBasePageSize;
      op.think_time = kMillisecond;
      trace.Append(op);
    }
  }
  return trace;
}

TEST(TlbStaleTranslationTest, PoisonedUnitStillFaults) {
  const Trace trace = LoopTrace(/*pages=*/16, /*touched=*/4, /*rounds=*/4000);
  Machine machine(MachineConfig::StandardTwoTier(4096), std::make_unique<NullPolicy>());
  Process& process = machine.CreateProcess("t");
  machine.AttachWorkload(process, std::make_unique<TraceStream>(&trace), 1);
  machine.Start();
  machine.Run(kSecond);

  const uint64_t vpn = process.aspace().lowest_vpn();
  Vma* vma = process.aspace().FindVma(vpn);
  ASSERT_NE(vma, nullptr);
  PageInfo& unit = vma->HotnessUnit(vpn);

  // The loop revisits the page constantly, so its translation is cached by now.
  EXPECT_GT(machine.TlbStats().hits, 0u);
  ASSERT_EQ(process.tlb().Lookup(vpn), &unit);

  machine.PoisonUnit(unit);
  // Poisoning dropped the cached translation — the fast lane cannot skip the fault.
  EXPECT_EQ(process.tlb().Lookup(vpn), nullptr);
  ASSERT_TRUE(unit.Has(kPageProtNone));

  const uint64_t faults_before = machine.metrics().hint_faults();
  machine.Run(kSecond);
  EXPECT_GT(machine.metrics().hint_faults(), faults_before);
  EXPECT_FALSE(unit.Has(kPageProtNone)) << "hint fault should have cleared the poison";
}

TEST(TlbStaleTranslationTest, HugeSplitRemapsTailVpns) {
  // One huge group (512 base pages); the trace hammers a tail page, so the TLB caches
  // tail_vpn -> group head.
  const Trace trace = LoopTrace(/*pages=*/kBasePagesPerHugePage, /*touched=*/8,
                                /*rounds=*/2000, /*first=*/1);
  Machine machine(MachineConfig::StandardTwoTier(4096), std::make_unique<NullPolicy>());
  Process& process = machine.CreateProcess("t");
  process.set_default_page_kind(PageSizeKind::kHuge);
  machine.AttachWorkload(process, std::make_unique<TraceStream>(&trace), 1);
  machine.Start();
  machine.Run(kSecond);

  const uint64_t base_vpn = process.aspace().lowest_vpn();
  const uint64_t tail_vpn = base_vpn + 5;
  Vma* vma = process.aspace().FindVma(tail_vpn);
  ASSERT_NE(vma, nullptr);
  PageInfo& head = vma->HotnessUnit(tail_vpn);
  ASSERT_TRUE(head.huge_head());
  ASSERT_NE(head.vpn, tail_vpn);
  ASSERT_EQ(process.tlb().Lookup(tail_vpn), &head);

  ASSERT_TRUE(machine.SplitHugeUnit(*vma, head));

  // The stale head translation is gone: a fast-lane hit on it would have aggregated the
  // tail's accesses onto the (no longer covering) head unit.
  EXPECT_EQ(process.tlb().Lookup(tail_vpn), nullptr);
  PageInfo& tail = vma->PageAt(tail_vpn);
  ASSERT_EQ(&vma->HotnessUnit(tail_vpn), &tail);

  const uint64_t tail_count_before = machine.arena().cold(tail).access_count;
  const uint64_t head_count_before = machine.arena().cold(head).access_count;
  machine.Run(kSecond);
  EXPECT_GT(machine.arena().cold(tail).access_count, tail_count_before)
      << "post-split accesses must land on the tail's own base page";
  EXPECT_EQ(machine.arena().cold(head).access_count, head_count_before)
      << "post-split tail accesses must not aggregate to the old group head";
}

// --- TranslationCache unit tests ---

TEST(TranslationCacheTest, LookupInsertInvalidate) {
  TranslationCache tlb;
  PageInfo unit;
  unit.vpn = 7;
  EXPECT_EQ(tlb.Lookup(7), nullptr);
  tlb.Insert(7, &unit);
  EXPECT_EQ(tlb.Lookup(7), &unit);
  tlb.Invalidate(7);
  EXPECT_EQ(tlb.Lookup(7), nullptr);
  EXPECT_EQ(tlb.hits(), 1u);
  EXPECT_EQ(tlb.misses(), 2u);
  EXPECT_EQ(tlb.invalidations(), 1u);
}

TEST(TranslationCacheTest, DirectMappedConflictEvicts) {
  TranslationCache tlb;
  PageInfo a;
  a.vpn = 3;
  PageInfo b;
  b.vpn = 3 + TranslationCache::kEntries;
  tlb.Insert(a.vpn, &a);
  tlb.Insert(b.vpn, &b);  // Same slot.
  EXPECT_EQ(tlb.Lookup(a.vpn), nullptr);
  EXPECT_EQ(tlb.Lookup(b.vpn), &b);
}

TEST(TranslationCacheTest, SlotValidatesAgainstUnitVpn) {
  // Slots are bare pointers: an entry must only translate the vpns its unit covers. A
  // base-page unit covers exactly its own vpn; a huge head covers its whole group.
  TranslationCache tlb;
  PageInfo base;
  base.vpn = 9;
  tlb.Insert(9, &base);
  EXPECT_EQ(tlb.Lookup(9 + TranslationCache::kEntries), nullptr);  // Aliased slot, no tag.

  PageInfo head;
  head.vpn = kBasePagesPerHugePage;  // Heads are group-aligned.
  head.Set(kPageHugeHead);
  const uint64_t tail = head.vpn + 17;
  tlb.Insert(tail, &head);
  EXPECT_EQ(tlb.Lookup(tail), &head);
  // One past the group: same head pointer must not cover it.
  tlb.Insert(head.vpn + kBasePagesPerHugePage, &head);
  EXPECT_EQ(tlb.Lookup(head.vpn + kBasePagesPerHugePage), nullptr);
}

TEST(TranslationCacheTest, InvalidateRangeCoversHugeGroup) {
  TranslationCache tlb;
  PageInfo head;
  head.vpn = 0;
  head.Set(kPageHugeHead);
  for (uint64_t vpn = 0; vpn < 8; ++vpn) {
    tlb.Insert(vpn, &head);
  }
  tlb.InvalidateRange(0, kBasePagesPerHugePage);  // 512 >= 8: all entries must go.
  for (uint64_t vpn = 0; vpn < 8; ++vpn) {
    EXPECT_EQ(tlb.Lookup(vpn), nullptr) << "vpn " << vpn;
  }
}

TEST(TranslationCacheTest, FastPathMaskRejectsIneligibleFlags) {
  PageInfo unit;
  unit.Set(kPagePresent);
  EXPECT_EQ(unit.flags & TranslationCache::kFastPathMask, kPagePresent);
  unit.Set(kPageProtNone);
  EXPECT_NE(unit.flags & TranslationCache::kFastPathMask, kPagePresent);
  unit.ClearFlag(kPageProtNone);
  unit.Set(kPageMigrating);
  EXPECT_NE(unit.flags & TranslationCache::kFastPathMask, kPagePresent);
}

}  // namespace
}  // namespace chronotier
