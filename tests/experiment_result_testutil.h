// Shared helper: field-by-field *exact* comparison of two ExperimentResults.
//
// Used by the TLB-equivalence tests (fast lane on vs off) and the runner tests (parallel
// vs serial): both claim bit-identical replay, so doubles are compared with EXPECT_EQ
// (exact), not near-equality — any ULP of drift means the replay diverged.

#pragma once

#include <gtest/gtest.h>

#include <string>

#include "src/harness/experiment.h"

namespace chronotier {

inline void ExpectResultsIdentical(const ExperimentResult& a, const ExperimentResult& b,
                                   const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(a.policy_name, b.policy_name);
  EXPECT_EQ(a.elapsed, b.elapsed);

  EXPECT_EQ(a.throughput_ops, b.throughput_ops);
  EXPECT_EQ(a.avg_latency_ns, b.avg_latency_ns);
  EXPECT_EQ(a.median_latency_ns, b.median_latency_ns);
  EXPECT_EQ(a.p99_latency_ns, b.p99_latency_ns);
  EXPECT_EQ(a.read_avg_ns, b.read_avg_ns);
  EXPECT_EQ(a.write_avg_ns, b.write_avg_ns);

  EXPECT_EQ(a.fmar, b.fmar);
  EXPECT_EQ(a.kernel_time_fraction, b.kernel_time_fraction);
  EXPECT_EQ(a.context_switches_per_sec, b.context_switches_per_sec);

  EXPECT_EQ(a.promoted_pages, b.promoted_pages);
  EXPECT_EQ(a.demoted_pages, b.demoted_pages);
  EXPECT_EQ(a.promotion_events, b.promotion_events);
  EXPECT_EQ(a.thrash_events, b.thrash_events);
  EXPECT_EQ(a.hint_faults, b.hint_faults);

  EXPECT_EQ(a.migrations_submitted, b.migrations_submitted);
  EXPECT_EQ(a.migrations_committed, b.migrations_committed);
  EXPECT_EQ(a.migrations_aborted, b.migrations_aborted);
  EXPECT_EQ(a.migrations_refused, b.migrations_refused);
  EXPECT_EQ(a.migration_mean_attempts, b.migration_mean_attempts);
  EXPECT_EQ(a.copy_bandwidth_utilization, b.copy_bandwidth_utilization);

  EXPECT_EQ(a.congested_accesses, b.congested_accesses);
  EXPECT_EQ(a.congestion_queued_ns, b.congestion_queued_ns);
  EXPECT_EQ(a.multi_hop_copies, b.multi_hop_copies);
  EXPECT_EQ(a.multi_hop_legs, b.multi_hop_legs);

  EXPECT_EQ(a.migrations_parked, b.migrations_parked);
  EXPECT_EQ(a.faults_injected_transient, b.faults_injected_transient);
  EXPECT_EQ(a.faults_injected_persistent, b.faults_injected_persistent);
  EXPECT_EQ(a.frames_quarantined, b.frames_quarantined);
  EXPECT_EQ(a.alloc_refusals, b.alloc_refusals);
  EXPECT_EQ(a.emergency_reclaims, b.emergency_reclaims);
  EXPECT_EQ(a.pressure_spikes, b.pressure_spikes);
  EXPECT_EQ(a.stall_windows, b.stall_windows);
  EXPECT_EQ(a.audits_run, b.audits_run);

  EXPECT_EQ(a.migration_commit_hash, b.migration_commit_hash);
  EXPECT_EQ(a.trace_events_dropped, b.trace_events_dropped);

  EXPECT_EQ(a.sample_times, b.sample_times);
  EXPECT_EQ(a.residency_percent, b.residency_percent);
}

}  // namespace chronotier
