// Unit tests for the VM substrate: pages, LRU lists, address spaces, scanner.

#include <gtest/gtest.h>

#include "src/vm/address_space.h"
#include "src/vm/lru.h"
#include "src/vm/page.h"
#include "src/vm/process.h"
#include "src/vm/scanner.h"

namespace chronotier {
namespace {

TEST(PageInfoTest, FlagOps) {
  PageInfo page;
  EXPECT_FALSE(page.present());
  page.Set(kPagePresent);
  page.Set(kPageDirty);
  EXPECT_TRUE(page.present());
  EXPECT_TRUE(page.Has(kPageDirty));
  page.ClearFlag(kPageDirty);
  EXPECT_FALSE(page.Has(kPageDirty));
  EXPECT_TRUE(page.present());
}

TEST(PageInfoTest, CitMetadataIsFourBytes) {
  // The paper's space-budget claim: CIT metadata is 4 bytes per page.
  EXPECT_EQ(sizeof(PageInfo::scan_ts_ms), 4u);
}

// --- PageList / NodeLru ---

TEST(PageListTest, PushRemovePop) {
  PageArena arena;
  PageList list;
  list.set_arena(&arena);
  PageInfo a;
  PageInfo b;
  PageInfo c;
  arena.RegisterPage(&a);
  arena.RegisterPage(&b);
  arena.RegisterPage(&c);
  list.PushFront(&a);
  list.PushFront(&b);
  list.PushBack(&c);
  // Order (head->tail): b, a, c.
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.Head(), &b);
  EXPECT_EQ(list.Tail(), &c);
  list.Remove(&a);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.PopBack(), &c);
  EXPECT_EQ(list.PopBack(), &b);
  EXPECT_EQ(list.PopBack(), nullptr);
  EXPECT_TRUE(list.empty());
}

TEST(PageListTest, RotateMovesToHead) {
  PageArena arena;
  PageList list;
  list.set_arena(&arena);
  PageInfo a;
  PageInfo b;
  arena.RegisterPage(&a);
  arena.RegisterPage(&b);
  list.PushFront(&a);
  list.PushFront(&b);  // head=b, tail=a
  list.Rotate(&a);
  EXPECT_EQ(list.Head(), &a);
  EXPECT_EQ(list.Tail(), &b);
}

TEST(NodeLruTest, InsertEraseActivateDeactivate) {
  PageArena arena;
  NodeLru lru;
  lru.set_arena(&arena);
  PageInfo page;
  arena.RegisterPage(&page);
  lru.Insert(&page, /*active=*/true);
  EXPECT_EQ(page.lru_state(), LruMembership::kActive);
  EXPECT_EQ(lru.active().size(), 1u);
  lru.Deactivate(&page);
  EXPECT_EQ(page.lru_state(), LruMembership::kInactive);
  EXPECT_EQ(lru.inactive().size(), 1u);
  lru.Activate(&page);
  EXPECT_EQ(page.lru_state(), LruMembership::kActive);
  lru.Erase(&page);
  EXPECT_EQ(page.lru_state(), LruMembership::kNone);
  EXPECT_EQ(lru.total(), 0u);
  lru.Erase(&page);  // Idempotent.
}

TEST(NodeLruTest, BalanceMovesUnreferencedToInactive) {
  PageArena arena;
  NodeLru lru;
  lru.set_arena(&arena);
  std::vector<PageInfo> pages(10);
  for (auto& page : pages) {
    arena.RegisterPage(&page);
    lru.Insert(&page, /*active=*/true);
  }
  // Mark the LRU-oldest three as referenced.
  pages[0].Set(kPageAccessed);
  pages[1].Set(kPageAccessed);
  pages[2].Set(kPageAccessed);
  lru.BalanceInactive(0.5, 100);
  EXPECT_GE(lru.inactive().size(), 5u);
  // Referenced pages got a second chance: their accessed bits were consumed and they stayed
  // active.
  EXPECT_FALSE(pages[0].accessed());
  EXPECT_EQ(pages[0].lru_state(), LruMembership::kActive);
}

// --- AddressSpace / Vma ---

TEST(AddressSpaceTest, MapRegionAndLookup) {
  AddressSpace aspace(1);
  const uint64_t addr = aspace.MapRegion(1 << 20);  // 256 pages.
  const uint64_t vpn = addr / kBasePageSize;
  EXPECT_EQ(aspace.total_pages(), 256u);
  ASSERT_NE(aspace.FindPage(vpn), nullptr);
  ASSERT_NE(aspace.FindPage(vpn + 255), nullptr);
  EXPECT_EQ(aspace.FindPage(vpn + 256), nullptr);
  EXPECT_EQ(aspace.FindPage(vpn)->owner, 1);
  EXPECT_EQ(aspace.FindPage(vpn)->vpn, vpn);
}

TEST(AddressSpaceTest, MultipleRegionsDisjoint) {
  AddressSpace aspace(0);
  const uint64_t a = aspace.MapRegion(1 << 16);
  const uint64_t b = aspace.MapRegion(1 << 16);
  EXPECT_NE(a, b);
  EXPECT_EQ(aspace.vmas().size(), 2u);
  EXPECT_EQ(aspace.total_pages(), 32u);
}

TEST(AddressSpaceTest, PageByIndexWalksVmas) {
  AddressSpace aspace(0);
  aspace.MapRegion(4 * kBasePageSize);
  aspace.MapRegion(4 * kBasePageSize);
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_NE(aspace.PageByIndex(i), nullptr) << i;
  }
  EXPECT_EQ(aspace.PageByIndex(8), nullptr);
  // Index 4 is the first page of the second VMA.
  EXPECT_EQ(aspace.PageByIndex(4)->vpn, aspace.vmas()[1]->start_vpn());
}

TEST(VmaTest, HugeMappingGroupsAndHeads) {
  AddressSpace aspace(0);
  const uint64_t addr = aspace.MapRegion(4 * kHugePageSize, PageSizeKind::kHuge);
  Vma* vma = aspace.FindVma(addr / kBasePageSize);
  ASSERT_NE(vma, nullptr);
  EXPECT_EQ(vma->num_pages(), 4 * kBasePagesPerHugePage);
  EXPECT_EQ(vma->num_groups(), 4u);
  // Alignment: start vpn is a multiple of 512.
  EXPECT_EQ(vma->start_vpn() % kBasePagesPerHugePage, 0u);

  const uint64_t vpn = vma->start_vpn() + kBasePagesPerHugePage + 7;  // Group 1, offset 7.
  PageInfo& unit = vma->HotnessUnit(vpn);
  EXPECT_EQ(unit.vpn, vma->start_vpn() + kBasePagesPerHugePage);
  EXPECT_TRUE(unit.huge_head());
  EXPECT_EQ(vma->UnitPages(vpn), kBasePagesPerHugePage);
}

TEST(VmaTest, SplitGroupMakesBasePages) {
  AddressSpace aspace(0);
  const uint64_t addr = aspace.MapRegion(2 * kHugePageSize, PageSizeKind::kHuge);
  Vma* vma = aspace.FindVma(addr / kBasePageSize);
  PageInfo& head = vma->GroupHead(0);
  head.Set(kPagePresent);
  head.node = kFastNode;

  vma->SplitGroup(0);
  EXPECT_TRUE(vma->IsGroupSplit(0));
  EXPECT_FALSE(vma->IsGroupSplit(1));
  const uint64_t vpn = vma->start_vpn() + 3;
  PageInfo& unit = vma->HotnessUnit(vpn);
  EXPECT_EQ(unit.vpn, vpn);  // Now its own unit.
  EXPECT_EQ(vma->UnitPages(vpn), 1u);
  EXPECT_TRUE(unit.present());
  EXPECT_EQ(unit.node, kFastNode);
  // Group 1 still aggregates.
  EXPECT_EQ(vma->UnitPages(vma->start_vpn() + kBasePagesPerHugePage), kBasePagesPerHugePage);
}

TEST(VmaTest, ForEachUnitCountsUnits) {
  AddressSpace aspace(0);
  const uint64_t addr = aspace.MapRegion(3 * kHugePageSize, PageSizeKind::kHuge);
  Vma* vma = aspace.FindVma(addr / kBasePageSize);
  int units = 0;
  vma->ForEachUnit([&units](PageInfo&) { ++units; });
  EXPECT_EQ(units, 3);
  vma->SplitGroup(1);
  units = 0;
  vma->ForEachUnit([&units](PageInfo&) { ++units; });
  EXPECT_EQ(units, 2 + static_cast<int>(kBasePagesPerHugePage));
}

// --- RangeScanner ---

TEST(ScannerTest, VisitsAllPagesAcrossChunks) {
  AddressSpace aspace(0);
  aspace.MapRegion(64 * kBasePageSize);
  aspace.MapRegion(32 * kBasePageSize);
  RangeScanner scanner(&aspace);
  int visits = 0;
  int chunks = 0;
  bool wrapped = false;
  while (!wrapped) {
    const auto result = scanner.ScanChunk(16, [&visits](Vma&, PageInfo&) { ++visits; });
    wrapped = result.wrapped;
    ++chunks;
    ASSERT_LT(chunks, 100);
  }
  EXPECT_EQ(visits, 96);
  EXPECT_EQ(chunks, 6);
}

TEST(ScannerTest, HugeUnitsVisitedOncePerGroup) {
  AddressSpace aspace(0);
  aspace.MapRegion(2 * kHugePageSize, PageSizeKind::kHuge);
  RangeScanner scanner(&aspace);
  int visits = 0;
  const auto result = scanner.ScanChunk(10 * kBasePagesPerHugePage,
                                        [&visits](Vma&, PageInfo& unit) {
                                          EXPECT_TRUE(unit.huge_head());
                                          ++visits;
                                        });
  EXPECT_EQ(visits, 2);
  EXPECT_EQ(result.units_visited, 2u);
  EXPECT_EQ(result.pages_covered, 2 * kBasePagesPerHugePage);
}

TEST(ScannerTest, EmptySpaceIsSafe) {
  AddressSpace aspace(0);
  RangeScanner scanner(&aspace);
  const auto result = scanner.ScanChunk(100, [](Vma&, PageInfo&) { FAIL(); });
  EXPECT_EQ(result.units_visited, 0u);
}

TEST(ScannerTest, LapProgressAdvances) {
  AddressSpace aspace(0);
  aspace.MapRegion(100 * kBasePageSize);
  RangeScanner scanner(&aspace);
  EXPECT_DOUBLE_EQ(scanner.LapProgress(), 0.0);
  scanner.ScanChunk(50, [](Vma&, PageInfo&) {});
  EXPECT_NEAR(scanner.LapProgress(), 0.5, 0.01);
}

// --- Process ---

TEST(ProcessTest, ResidencyPercent) {
  Process process(0, "test");
  EXPECT_DOUBLE_EQ(process.FastTierResidencyPercent(), 0.0);
  process.AddResident(kFastNode, 30);
  process.AddResident(kSlowNode, 70);
  EXPECT_DOUBLE_EQ(process.FastTierResidencyPercent(), 30.0);
  process.AddResident(kSlowNode, -70);
  EXPECT_DOUBLE_EQ(process.FastTierResidencyPercent(), 100.0);
}

TEST(ProcessTest, ClockMonotone) {
  Process process(0, "test");
  process.AdvanceClock(100);
  EXPECT_EQ(process.clock(), 100);
  process.SyncClockTo(50);  // Cannot go backwards.
  EXPECT_EQ(process.clock(), 100);
  process.SyncClockTo(200);
  EXPECT_EQ(process.clock(), 200);
}

}  // namespace
}  // namespace chronotier
