// Tests for trace record/replay: exact capture, file round-trip, replay fidelity across
// machines, and repeat semantics.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "src/harness/machine.h"
#include "src/policies/linux_nb.h"
#include "src/workloads/patterns.h"
#include "src/workloads/trace.h"

namespace chronotier {
namespace {

class NullPolicy : public TieringPolicy {
 public:
  std::string_view name() const override { return "null"; }
  void Attach(Machine&) override {}
  SimDuration OnHintFault(Process&, Vma&, PageInfo&, bool, SimTime) override { return 0; }
};

Trace RecordHotsetTrace(uint64_t ops) {
  Trace trace;
  Machine machine(MachineConfig::StandardTwoTier(4096, 0.25),
                  std::make_unique<NullPolicy>());
  Process& process = machine.CreateProcess("recorded");
  HotsetConfig w;
  w.working_set_bytes = 512 * kBasePageSize;
  w.op_limit = ops;
  machine.AttachWorkload(
      process, std::make_unique<TraceRecorder>(std::make_unique<HotsetStream>(w), &trace),
      /*seed=*/123);
  machine.Start();
  machine.RunToCompletion(kMinute);
  return trace;
}

TEST(TraceTest, RecorderCapturesEveryOp) {
  const Trace trace = RecordHotsetTrace(5000);
  EXPECT_EQ(trace.size(), 5000u);
  EXPECT_EQ(trace.working_set_bytes(), 512 * kBasePageSize);
  // Relative addressing: all ops fall inside the recorded working set.
  for (const TraceEntry& entry : trace.entries()) {
    EXPECT_LT(entry.vaddr, trace.working_set_bytes());
  }
}

TEST(TraceTest, FileRoundTripIsExact) {
  const Trace trace = RecordHotsetTrace(2000);
  const std::string path = ::testing::TempDir() + "/chronotier_trace_test.txt";
  ASSERT_TRUE(trace.SaveTo(path));

  Trace loaded;
  ASSERT_TRUE(Trace::LoadFrom(path, &loaded));
  ASSERT_EQ(loaded.size(), trace.size());
  EXPECT_EQ(loaded.working_set_bytes(), trace.working_set_bytes());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(loaded.entries()[i].vaddr, trace.entries()[i].vaddr) << i;
    EXPECT_EQ(loaded.entries()[i].is_store, trace.entries()[i].is_store) << i;
    EXPECT_EQ(loaded.entries()[i].think_time, trace.entries()[i].think_time) << i;
  }
  std::remove(path.c_str());
}

TEST(TraceTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/chronotier_bad_trace.txt";
  std::FILE* file = std::fopen(path.c_str(), "w");
  ASSERT_NE(file, nullptr);
  std::fputs("not a trace\n", file);
  std::fclose(file);
  Trace loaded;
  EXPECT_FALSE(Trace::LoadFrom(path, &loaded));
  EXPECT_FALSE(Trace::LoadFrom("/nonexistent/path/trace.txt", &loaded));
  std::remove(path.c_str());
}

TEST(TraceTest, ReplayReproducesAccessCounts) {
  const Trace trace = RecordHotsetTrace(8000);

  // Replay the trace on two different machines; per-page oracle access counts must agree
  // exactly (the whole point of traces: generator variance is gone).
  auto run_replay = [&trace](uint64_t seed) {
    Machine machine(MachineConfig::StandardTwoTier(4096, 0.25),
                    std::make_unique<NullPolicy>());
    Process& process = machine.CreateProcess("replay");
    machine.AttachWorkload(process, std::make_unique<TraceStream>(&trace), seed);
    machine.Start();
    machine.RunToCompletion(kMinute);
    std::vector<uint64_t> counts;
    process.aspace().ForEachPage(
        [&counts](Vma&, PageInfo& page) { counts.push_back(page.oracle_access_count); });
    return counts;
  };
  const std::vector<uint64_t> a = run_replay(1);
  const std::vector<uint64_t> b = run_replay(999);  // Seed must not matter.
  EXPECT_EQ(a, b);

  uint64_t total = 0;
  for (uint64_t count : a) {
    total += count;
  }
  EXPECT_EQ(total, 8000u);
}

TEST(TraceTest, RepeatLoopsTheTrace) {
  Trace trace;
  trace.set_working_set_bytes(4 * kBasePageSize);
  for (int i = 0; i < 10; ++i) {
    trace.Append(MemOp{static_cast<uint64_t>(i % 4) * kBasePageSize, false, 0});
  }

  Machine machine(MachineConfig::StandardTwoTier(1024, 0.25),
                  std::make_unique<NullPolicy>());
  Process& process = machine.CreateProcess("looper");
  machine.AttachWorkload(process, std::make_unique<TraceStream>(&trace, /*repeat=*/3), 1);
  machine.Start();
  machine.RunToCompletion(kMinute);
  EXPECT_EQ(process.completed_accesses(), 30u);
}

TEST(TraceTest, ReplayWorksUnderRealPolicy) {
  const Trace trace = RecordHotsetTrace(20000);
  ScanGeometry geometry;
  geometry.scan_period = kSecond;
  geometry.scan_step_pages = 256;
  Machine machine(MachineConfig::StandardTwoTier(1024, 0.25),
                  std::make_unique<LinuxNumaBalancingPolicy>(geometry));
  Process& process = machine.CreateProcess("replay");
  machine.AttachWorkload(process, std::make_unique<TraceStream>(&trace, /*repeat=*/0), 1);
  machine.Start();
  machine.Run(5 * kSecond);  // repeat=0: loops forever; run a fixed window.
  EXPECT_GT(machine.metrics().total_ops(), 20000u);
  EXPECT_GT(machine.metrics().hint_faults(), 0u);
}

}  // namespace
}  // namespace chronotier
