// Tests for trace record/replay (exact capture, file round-trip, replay fidelity across
// machines, repeat semantics) and for the observability subsystem (src/trace): the
// tracing-on/off bitwise-determinism guarantee, ring overwrite accounting, category
// masks, per-page provenance, telemetry sampling, and the Chrome-trace exporter.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/standard_policies.h"
#include "src/harness/experiment.h"
#include "src/harness/machine.h"
#include "src/policies/linux_nb.h"
#include "src/trace/exporter.h"
#include "src/trace/tracer.h"
#include "src/workloads/patterns.h"
#include "src/workloads/pmbench.h"
#include "src/workloads/trace.h"
#include "tests/experiment_result_testutil.h"

namespace chronotier {
namespace {

class NullPolicy : public TieringPolicy {
 public:
  std::string_view name() const override { return "null"; }
  void Attach(Machine&) override {}
  SimDuration OnHintFault(Process&, Vma&, PageInfo&, bool, SimTime) override { return 0; }
};

Trace RecordHotsetTrace(uint64_t ops) {
  Trace trace;
  Machine machine(MachineConfig::StandardTwoTier(4096, 0.25),
                  std::make_unique<NullPolicy>());
  Process& process = machine.CreateProcess("recorded");
  HotsetConfig w;
  w.working_set_bytes = 512 * kBasePageSize;
  w.op_limit = ops;
  machine.AttachWorkload(
      process, std::make_unique<TraceRecorder>(std::make_unique<HotsetStream>(w), &trace),
      /*seed=*/123);
  machine.Start();
  machine.RunToCompletion(kMinute);
  return trace;
}

TEST(TraceTest, RecorderCapturesEveryOp) {
  const Trace trace = RecordHotsetTrace(5000);
  EXPECT_EQ(trace.size(), 5000u);
  EXPECT_EQ(trace.working_set_bytes(), 512 * kBasePageSize);
  // Relative addressing: all ops fall inside the recorded working set.
  for (const TraceEntry& entry : trace.entries()) {
    EXPECT_LT(entry.vaddr, trace.working_set_bytes());
  }
}

TEST(TraceTest, FileRoundTripIsExact) {
  const Trace trace = RecordHotsetTrace(2000);
  const std::string path = ::testing::TempDir() + "/chronotier_trace_test.txt";
  ASSERT_TRUE(trace.SaveTo(path));

  Trace loaded;
  ASSERT_TRUE(Trace::LoadFrom(path, &loaded));
  ASSERT_EQ(loaded.size(), trace.size());
  EXPECT_EQ(loaded.working_set_bytes(), trace.working_set_bytes());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(loaded.entries()[i].vaddr, trace.entries()[i].vaddr) << i;
    EXPECT_EQ(loaded.entries()[i].is_store, trace.entries()[i].is_store) << i;
    EXPECT_EQ(loaded.entries()[i].think_time, trace.entries()[i].think_time) << i;
  }
  std::remove(path.c_str());
}

TEST(TraceTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/chronotier_bad_trace.txt";
  std::FILE* file = std::fopen(path.c_str(), "w");
  ASSERT_NE(file, nullptr);
  std::fputs("not a trace\n", file);
  std::fclose(file);
  Trace loaded;
  EXPECT_FALSE(Trace::LoadFrom(path, &loaded));
  EXPECT_FALSE(Trace::LoadFrom("/nonexistent/path/trace.txt", &loaded));
  std::remove(path.c_str());
}

TEST(TraceTest, ReplayReproducesAccessCounts) {
  const Trace trace = RecordHotsetTrace(8000);

  // Replay the trace on two different machines; per-page oracle access counts must agree
  // exactly (the whole point of traces: generator variance is gone).
  auto run_replay = [&trace](uint64_t seed) {
    Machine machine(MachineConfig::StandardTwoTier(4096, 0.25),
                    std::make_unique<NullPolicy>());
    Process& process = machine.CreateProcess("replay");
    machine.AttachWorkload(process, std::make_unique<TraceStream>(&trace), seed);
    machine.Start();
    machine.RunToCompletion(kMinute);
    std::vector<uint64_t> counts;
    process.aspace().ForEachPage([&counts, &machine](Vma&, PageInfo& page) {
      counts.push_back(machine.arena().cold(page).access_count);
    });
    return counts;
  };
  const std::vector<uint64_t> a = run_replay(1);
  const std::vector<uint64_t> b = run_replay(999);  // Seed must not matter.
  EXPECT_EQ(a, b);

  uint64_t total = 0;
  for (uint64_t count : a) {
    total += count;
  }
  EXPECT_EQ(total, 8000u);
}

TEST(TraceTest, RepeatLoopsTheTrace) {
  Trace trace;
  trace.set_working_set_bytes(4 * kBasePageSize);
  for (int i = 0; i < 10; ++i) {
    trace.Append(MemOp{static_cast<uint64_t>(i % 4) * kBasePageSize, false, 0});
  }

  Machine machine(MachineConfig::StandardTwoTier(1024, 0.25),
                  std::make_unique<NullPolicy>());
  Process& process = machine.CreateProcess("looper");
  machine.AttachWorkload(process, std::make_unique<TraceStream>(&trace, /*repeat=*/3), 1);
  machine.Start();
  machine.RunToCompletion(kMinute);
  EXPECT_EQ(process.completed_accesses(), 30u);
}

TEST(TraceTest, ReplayWorksUnderRealPolicy) {
  const Trace trace = RecordHotsetTrace(20000);
  ScanGeometry geometry;
  geometry.scan_period = kSecond;
  geometry.scan_step_pages = 256;
  Machine machine(MachineConfig::StandardTwoTier(1024, 0.25),
                  std::make_unique<LinuxNumaBalancingPolicy>(geometry));
  Process& process = machine.CreateProcess("replay");
  machine.AttachWorkload(process, std::make_unique<TraceStream>(&trace, /*repeat=*/0), 1);
  machine.Start();
  machine.Run(5 * kSecond);  // repeat=0: loops forever; run a fixed window.
  EXPECT_GT(machine.metrics().total_ops(), 20000u);
  EXPECT_GT(machine.metrics().hint_faults(), 0u);
}

// ---------------------------------------------------------------------------------------
// Observability subsystem (src/trace): Tracer / provenance / telemetry / exporter.
// ---------------------------------------------------------------------------------------

ScanGeometry ObsGeometry() {
  ScanGeometry geometry;
  geometry.scan_period = 2 * kSecond;
  geometry.scan_step_pages = 512;
  return geometry;
}

ExperimentConfig ObsMachine() {
  ExperimentConfig config;
  config.total_pages = 8192;  // 32 MB machine, 8 MB DRAM.
  config.bandwidth_scale = 256.0;
  config.warmup = 2 * kSecond;
  config.measure = 3 * kSecond;
  config.seed = 7;
  config.residency_sample_interval = kSecond;
  return config;
}

std::vector<ProcessSpec> ObsProcs() {
  PmbenchConfig w;
  w.working_set_bytes = 3072 * kBasePageSize;  // 12 MB > DRAM: forces migration traffic.
  w.read_ratio = 0.5;
  w.per_op_delay = 8 * kMicrosecond;
  w.sequential_init = true;
  return {{"pm", [w] { return std::make_unique<PmbenchStream>(w); }},
          {"pm", [w] { return std::make_unique<PmbenchStream>(w); }}};
}

// Everything on, ring sized so nothing is ever overwritten (the equivalence claim needs
// the full volume recorded, and the drops counter is part of the compared result).
TraceConfig FullTracing() {
  TraceConfig trace;
  trace.enabled = true;
  trace.categories = kTraceAllCategories;
  trace.ring_capacity = 1ull << 21;
  trace.provenance_sample_period = 16;
  trace.telemetry_period = 100 * kMillisecond;
  return trace;
}

// The subsystem's core guarantee: tracing is strictly observational. With every category
// enabled (including per-access events on the fast path), every policy must produce an
// ExperimentResult bitwise identical to the untraced run — any divergence means an
// instrumentation site perturbed simulation state, RNG draws, or event interleaving.
TEST(ObservabilityTest, TracingOnIsBitwiseIdenticalForEveryPolicy) {
  for (const auto& named : StandardPolicySet(ObsGeometry())) {
    ExperimentConfig off = ObsMachine();
    ExperimentConfig on = ObsMachine();
    on.trace = FullTracing();

    const ExperimentResult result_off = Experiment::Run(off, named.make, ObsProcs());
    uint64_t recorded = 0;
    const ExperimentResult result_on = Experiment::Run(
        on, named.make, ObsProcs(), nullptr, [&recorded](Machine& machine, ExperimentResult&) {
          ASSERT_NE(machine.tracer(), nullptr);
          recorded = machine.tracer()->recorded();
        });

    EXPECT_GT(recorded, 0u) << named.name;
    // The ring must have been big enough, or the comparison below proves nothing.
    EXPECT_EQ(result_on.trace_events_dropped, 0u) << named.name;
    ExpectResultsIdentical(result_off, result_on, named.name);
  }
}

TEST(ObservabilityTest, RingOverwriteAccountingIsExact) {
  TraceConfig config;
  config.enabled = true;
  config.ring_capacity = 8;
  config.telemetry_period = 0;
  Tracer tracer(config);
  for (int i = 0; i < 20; ++i) {
    tracer.Emit(TraceCategory::kMigration, TraceEventType::kMigrationCommit,
                /*ts=*/i * kMillisecond, /*pid=*/0, /*vpn=*/kTraceNoVpn);
  }
  EXPECT_EQ(tracer.recorded(), 20u);
  EXPECT_EQ(tracer.overwritten(), 12u);
  EXPECT_EQ(tracer.size(), 8u);
  // Retained events are the newest 8, iterated oldest-to-newest.
  std::vector<SimTime> ts;
  tracer.ForEachEvent([&ts](const TraceEvent& event) { ts.push_back(event.ts); });
  ASSERT_EQ(ts.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(ts[i], (12 + i) * kMillisecond);
  }
}

TEST(ObservabilityTest, CategoryMaskFiltersEmissions) {
  TraceConfig config;
  config.enabled = true;
  config.categories =
      TraceCategoryBit(TraceCategory::kMigration) | TraceCategoryBit(TraceCategory::kFault);
  config.telemetry_period = 0;
  Tracer tracer(config);
  EXPECT_TRUE(tracer.wants(TraceCategory::kMigration));
  EXPECT_FALSE(tracer.wants(TraceCategory::kAccess));

  tracer.Emit(TraceCategory::kAccess, TraceEventType::kAccess, 0, 0, 1);
  tracer.Emit(TraceCategory::kScan, TraceEventType::kScanLap, 0, 0, kTraceNoVpn);
  EXPECT_EQ(tracer.recorded(), 0u);
  tracer.Emit(TraceCategory::kMigration, TraceEventType::kMigrationSubmit, 0, 0, 1);
  tracer.Emit(TraceCategory::kFault, TraceEventType::kDemandFault, 0, 0, 2);
  EXPECT_EQ(tracer.recorded(), 2u);
  EXPECT_EQ(tracer.overwritten(), 0u);
}

TEST(ObservabilityTest, ProvenanceKeepsBoundedHistoryPerSampledPage) {
  TraceConfig config;
  config.enabled = true;
  config.provenance_sample_period = 1;  // Sample every page.
  config.provenance_depth = 4;
  config.telemetry_period = 0;
  Tracer tracer(config);
  for (int i = 0; i < 10; ++i) {
    tracer.Emit(TraceCategory::kFault, TraceEventType::kHintFault, i * kMillisecond,
                /*pid=*/3, /*vpn=*/0x42);
  }
  const PageProvenance* page = tracer.ProvenanceFor(3, 0x42);
  ASSERT_NE(page, nullptr);
  EXPECT_EQ(page->total_events, 10u);
  EXPECT_EQ(page->recent.size(), 4u);
  // Bounded history keeps the newest 4, oldest-to-newest.
  std::vector<SimTime> ts;
  page->ForEach([&ts](const TraceEvent& event) { ts.push_back(event.ts); });
  ASSERT_EQ(ts.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ts[i], (6 + i) * kMillisecond);
  }
  EXPECT_EQ(tracer.ProvenanceFor(3, 0x43), nullptr);  // Never touched.

  std::ostringstream dump;
  tracer.WriteProvenance(dump);
  EXPECT_NE(dump.str().find("# page provenance: 1 sampled pages"), std::string::npos);
  EXPECT_NE(dump.str().find("vpn=0x42"), std::string::npos);
}

TEST(ObservabilityTest, ProvenanceDisabledWhenPeriodZero) {
  TraceConfig config;
  config.enabled = true;
  config.provenance_sample_period = 0;
  config.telemetry_period = 0;
  Tracer tracer(config);
  tracer.Emit(TraceCategory::kFault, TraceEventType::kHintFault, 0, 0, 0x42);
  EXPECT_EQ(tracer.provenance_page_count(), 0u);
}

TEST(ObservabilityTest, TelemetrySamplerHonorsPeriod) {
  TelemetrySampler sampler(100 * kMillisecond);
  sampler.set_snapshot_fn([](SimTime, TelemetrySample* sample) {
    sample->tiers.resize(2);
    sample->tiers[0].allocated = 7;
  });
  sampler.MaybeSample(0);
  sampler.MaybeSample(50 * kMillisecond);   // Not due.
  sampler.MaybeSample(100 * kMillisecond);
  sampler.MaybeSample(101 * kMillisecond);  // Not due.
  sampler.MaybeSample(350 * kMillisecond);
  ASSERT_EQ(sampler.samples().size(), 3u);
  EXPECT_EQ(sampler.samples()[0].ts, 0);
  EXPECT_EQ(sampler.samples()[1].ts, 100 * kMillisecond);
  EXPECT_EQ(sampler.samples()[2].ts, 350 * kMillisecond);
  sampler.ForceSample(350 * kMillisecond);  // Dedups on identical timestamp.
  EXPECT_EQ(sampler.samples().size(), 3u);
  sampler.ForceSample(400 * kMillisecond);
  EXPECT_EQ(sampler.samples().size(), 4u);

  std::ostringstream csv;
  sampler.WriteCsv(csv);
  const std::string text = csv.str();
  EXPECT_EQ(text.rfind("ts_ms,", 0), 0u);  // Header row first.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);  // Header + 4 samples.

  std::ostringstream json;
  sampler.WriteJson(json);
  EXPECT_EQ(json.str().front(), '[');
}

// Structural well-formedness: every brace/bracket outside a string literal balances.
// (CI additionally runs `python3 -m json.tool` over a real exported trace.)
void ExpectBalancedJson(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

TEST(ObservabilityTest, ExporterSortsEachTrackByTimestamp) {
  TraceConfig config;
  config.enabled = true;
  config.telemetry_period = 0;
  Tracer tracer(config);
  tracer.SetProcessName(0, "worker");
  // Engine lifecycle track (pid 2 / tid 0), deliberately emitted out of time order —
  // the global ring is emission-ordered, not per-track time-ordered.
  tracer.Emit(TraceCategory::kMigration, TraceEventType::kMigrationSubmit,
              300 * kMicrosecond, 0, 5, kSlowNode, kFastNode);
  tracer.Emit(TraceCategory::kMigration, TraceEventType::kMigrationCommit,
              100 * kMicrosecond, 0, 4, kSlowNode, kFastNode);
  tracer.Emit(TraceCategory::kMigration, TraceEventType::kMigrationCopy,
              200 * kMicrosecond, 0, 4, kSlowNode, kFastNode, 1, 50000);
  tracer.Emit(TraceCategory::kReclaim, TraceEventType::kReclaimWake, 10 * kMicrosecond,
              kTraceNoPid, kTraceNoVpn, kFastNode);

  std::ostringstream out;
  WriteChromeTrace(tracer, out);
  const std::string json = out.str();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"migration engine\""), std::string::npos);
  EXPECT_NE(json.find("\"reclaim\""), std::string::npos);
  // The copy event renders as a duration slice on its own channel track.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Within the engine lifecycle track the commit (ts 100) must precede the submit
  // (ts 300) after the exporter's per-track sort.
  const size_t commit = json.find("migration_commit");
  const size_t submit = json.find("migration_submit");
  ASSERT_NE(commit, std::string::npos);
  ASSERT_NE(submit, std::string::npos);
  EXPECT_LT(commit, submit);
}

TEST(ObservabilityTest, ExperimentWritesAllExportFiles) {
  const std::string dir = ::testing::TempDir();
  ExperimentConfig config = ObsMachine();
  config.warmup = kSecond;
  config.measure = kSecond;
  config.trace = FullTracing();
  config.trace.export_path = dir + "/obs_trace.json";
  config.trace.timeseries_path = dir + "/obs_telemetry.csv";
  config.trace.provenance_path = dir + "/obs_provenance.txt";
  config.trace.provenance_sample_period = 4;

  const auto policies = StandardPolicySet(ObsGeometry());
  const ExperimentResult result =
      Experiment::Run(config, policies.front().make, ObsProcs());
  EXPECT_EQ(result.trace_events_dropped, 0u);

  std::ifstream trace_file(config.trace.export_path);
  ASSERT_TRUE(trace_file.good());
  std::stringstream trace_text;
  trace_text << trace_file.rdbuf();
  ExpectBalancedJson(trace_text.str());
  EXPECT_EQ(trace_text.str().front(), '{');
  EXPECT_NE(trace_text.str().find("\"displayTimeUnit\""), std::string::npos);

  std::ifstream csv_file(config.trace.timeseries_path);
  ASSERT_TRUE(csv_file.good());
  std::string header;
  std::getline(csv_file, header);
  EXPECT_EQ(header.rfind("ts_ms,", 0), 0u);

  std::ifstream prov_file(config.trace.provenance_path);
  ASSERT_TRUE(prov_file.good());
  std::string first;
  std::getline(prov_file, first);
  EXPECT_EQ(first.rfind("# page provenance:", 0), 0u);

  std::remove(config.trace.export_path.c_str());
  std::remove(config.trace.timeseries_path.c_str());
  std::remove(config.trace.provenance_path.c_str());
}

TEST(ObservabilityTest, TinyRingSurfacesDropsInResult) {
  ExperimentConfig config = ObsMachine();
  config.warmup = kSecond;
  config.measure = kSecond;
  config.trace = FullTracing();
  config.trace.ring_capacity = 64;  // Guaranteed to wrap under the access firehose.

  const auto policies = StandardPolicySet(ObsGeometry());
  const ExperimentResult result =
      Experiment::Run(config, policies.front().make, ObsProcs());
  EXPECT_GT(result.trace_events_dropped, 0u);
}

}  // namespace
}  // namespace chronotier
