// End-to-end behavioural tests for ChronoPolicy: CIT measurement through the machine,
// candidate filtering, promotion, demotion with the pro watermark, thrash response, DCSC
// tuning, and huge-page support.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/chrono_policy.h"
#include "src/harness/machine.h"
#include "src/workloads/patterns.h"

namespace chronotier {
namespace {

ChronoConfig TestChronoConfig() {
  ChronoConfig config = ChronoConfig::Full();
  config.geometry.scan_period = 2 * kSecond;
  config.geometry.scan_step_pages = 512;
  config.dcsc_period = 500 * kMillisecond;
  config.min_victims_per_process = 32;
  return config;
}

struct ChronoRig {
  std::unique_ptr<Machine> machine;
  ChronoPolicy* chrono = nullptr;
  Process* process = nullptr;
  HotsetStream* stream = nullptr;
};

ChronoRig MakeRig(ChronoConfig config = TestChronoConfig(), uint64_t machine_pages = 4096,
                  PageSizeKind kind = PageSizeKind::kBase) {
  ChronoRig rig;
  MachineConfig machine_config = MachineConfig::StandardTwoTier(machine_pages, 0.25);
  machine_config.bandwidth_scale = 64.0;
  auto policy = std::make_unique<ChronoPolicy>(config);
  rig.chrono = policy.get();
  rig.machine = std::make_unique<Machine>(machine_config, std::move(policy));
  rig.process = &rig.machine->CreateProcess("app");
  rig.process->set_default_page_kind(kind);
  HotsetConfig w;
  w.working_set_bytes = machine_pages / 2 * kBasePageSize;
  w.hot_fraction = 0.2;
  w.hot_access_fraction = 0.9;
  w.per_op_delay = kMicrosecond;
  w.sequential_init = true;
  auto stream = std::make_unique<HotsetStream>(w);
  rig.stream = stream.get();
  rig.machine->AttachWorkload(*rig.process, std::move(stream), 31);
  rig.machine->Start();
  return rig;
}

TEST(ChronoPolicyTest, MeasuresCitOnSlowPages) {
  ChronoRig rig = MakeRig();
  int observations = 0;
  uint32_t max_cit = 0;
  rig.chrono->set_cit_observer([&](const PageInfo& page, uint32_t cit_ms) {
    ++observations;
    max_cit = std::max(max_cit, cit_ms);
    EXPECT_NE(page.node, kFastNode);  // CIT is measured for slow-tier pages.
  });
  rig.machine->Run(6 * kSecond);
  EXPECT_GT(observations, 100);
  EXPECT_GT(max_cit, 0u);
}

TEST(ChronoPolicyTest, PromotesThroughQueueAsynchronously) {
  ChronoRig rig = MakeRig();
  rig.machine->Run(10 * kSecond);
  EXPECT_GT(rig.machine->metrics().promoted_pages(), 0u);
  EXPECT_GT(rig.chrono->promotion_queue().total_enqueued(), 0u);
  EXPECT_GT(rig.chrono->promotion_queue().total_dequeued(), 0u);
}

TEST(ChronoPolicyTest, PromotionsRespectRateLimit) {
  ChronoConfig config = TestChronoConfig();
  config.tuning = ChronoTuningMode::kSemiAuto;  // Fixed rate limit.
  config.initial_rate_limit_mbps = 8.0;         // 2048 pages/s.
  ChronoRig rig = MakeRig(config);
  rig.machine->Run(4 * kSecond);
  // Dequeues cannot exceed rate * elapsed (with one drain tick of slack).
  const double max_pages = ChronoConfig::PagesPerSecond(8.0) * 4.2;
  EXPECT_LE(static_cast<double>(rig.chrono->promotion_queue().total_dequeued()), max_pages);
}

TEST(ChronoPolicyTest, ProWatermarkRaisesDemotionTarget) {
  ChronoRig rig = MakeRig();
  rig.machine->Run(5 * kSecond);
  const MemoryTier& fast = rig.machine->memory().node(kFastNode);
  EXPECT_GT(fast.watermarks().pro, fast.watermarks().high);
  EXPECT_EQ(rig.chrono->DemotionRefillTarget(fast), fast.watermarks().pro);
}

TEST(ChronoPolicyTest, DemotedPagesArePoisonedAndStamped) {
  ChronoRig rig = MakeRig();
  rig.machine->Run(15 * kSecond);
  ASSERT_GT(rig.machine->metrics().demoted_pages(), 0u);
  // Find a demoted page that has not yet refaulted: it must be poisoned with a timestamp.
  bool found = false;
  rig.process->aspace().ForEachPage([&](Vma&, PageInfo& page) {
    if (page.Has(kPageDemoted) && page.prot_none()) {
      EXPECT_TRUE(HasScanTimestamp(page));
      found = true;
    }
  });
  // Churny runs may have consumed all demoted flags; only assert when one is present.
  (void)found;
}

TEST(ChronoPolicyTest, DcscConvergesThresholdDownward) {
  ChronoRig rig = MakeRig();
  const uint32_t initial = rig.chrono->cit_threshold_ms();
  rig.machine->Run(20 * kSecond);
  EXPECT_LT(rig.chrono->cit_threshold_ms(), initial);
  EXPECT_GT(rig.chrono->dcsc().completed_measurements(), 50u);
}

TEST(ChronoPolicyTest, PlacesHotSetBetterThanCapacityBaseline) {
  ChronoRig rig = MakeRig();
  rig.machine->Run(30 * kSecond);
  // Hot pages should dominate the fast tier well beyond their 20% share of memory (random
  // placement would give 0.2; all-hot-in-fast gives hot/fast-capacity = 0.4).
  const uint64_t hot_lo = rig.stream->region_start_vpn() + rig.stream->current_hot_base();
  const uint64_t hot_hi = hot_lo + rig.stream->hot_pages();
  uint64_t fast = 0;
  uint64_t fast_hot = 0;
  rig.process->aspace().ForEachPage([&](Vma& vma, PageInfo& page) {
    PageInfo& unit = vma.HotnessUnit(page.vpn);
    if (unit.present() && unit.node == kFastNode) {
      ++fast;
      fast_hot += (page.vpn >= hot_lo && page.vpn < hot_hi) ? 1 : 0;
    }
  });
  ASSERT_GT(fast, 0u);
  EXPECT_GT(static_cast<double>(fast_hot) / static_cast<double>(fast), 0.3);
  EXPECT_GT(rig.machine->metrics().Fmar(), 0.5);
}

TEST(ChronoPolicyTest, SemiAutoAdjustsThresholdWithoutDcsc) {
  ChronoConfig config = TestChronoConfig();
  config.tuning = ChronoTuningMode::kSemiAuto;
  ChronoRig rig = MakeRig(config);
  const uint32_t initial = rig.chrono->cit_threshold_ms();
  rig.machine->Run(12 * kSecond);
  EXPECT_NE(rig.chrono->cit_threshold_ms(), initial);
  EXPECT_EQ(rig.chrono->dcsc().completed_measurements(), 0u);  // DCSC daemon not running.
}

TEST(ChronoPolicyTest, SemiAutoKeepsUserRateLimit) {
  ChronoConfig config = TestChronoConfig();
  config.tuning = ChronoTuningMode::kSemiAuto;
  config.initial_rate_limit_mbps = 48.0;
  config.thrash_ratio_threshold = 1e9;  // Disable thrash halving for this test.
  ChronoRig rig = MakeRig(config);
  rig.machine->Run(10 * kSecond);
  EXPECT_DOUBLE_EQ(rig.chrono->rate_limit_mbps(), 48.0);
}

TEST(ChronoPolicyTest, ThrashHalvesRateLimit) {
  ChronoConfig config = TestChronoConfig();
  config.tuning = ChronoTuningMode::kSemiAuto;
  config.initial_rate_limit_mbps = 512.0;  // Absurdly high: guarantees churn + thrash.
  ChronoRig rig = MakeRig(config);
  rig.machine->Run(20 * kSecond);
  if (rig.machine->metrics().thrash_events() > 0) {
    EXPECT_LT(rig.chrono->rate_limit_mbps(), 512.0);
  }
}

TEST(ChronoPolicyTest, HugePageUnitsUseScaledThreshold) {
  ChronoConfig config = TestChronoConfig();
  ChronoRig rig = MakeRig(config, /*machine_pages=*/16384, PageSizeKind::kHuge);
  int huge_observations = 0;
  rig.chrono->set_cit_observer([&](const PageInfo& page, uint32_t) {
    if (page.huge_head()) {
      ++huge_observations;
    }
  });
  rig.machine->Run(10 * kSecond);
  EXPECT_GT(huge_observations, 0);
}

TEST(ChronoPolicyTest, VariantsRunEndToEnd) {
  for (ChronoConfig config : {ChronoConfig::Basic(), ChronoConfig::Twice(),
                              ChronoConfig::Thrice(), ChronoConfig::Manual(32.0)}) {
    config.geometry.scan_period = 2 * kSecond;
    config.geometry.scan_step_pages = 512;
    ChronoRig rig = MakeRig(config);
    rig.machine->Run(8 * kSecond);
    EXPECT_GT(rig.machine->metrics().total_ops(), 0u);
  }
}

TEST(ChronoPolicyTest, CandidateSetMemoryStaysSmall) {
  ChronoRig rig = MakeRig();
  rig.machine->Run(10 * kSecond);
  // Paper Section 4: < 32 KB per active process across its lifetime.
  EXPECT_LT(rig.chrono->candidate_filter().MemoryUsageBytes(), 64u * 1024);
}

TEST(ChronoPolicyTest, DcscVictimsAreProbedAndReleased) {
  ChronoRig rig = MakeRig();
  rig.machine->Run(5 * kSecond);
  EXPECT_GT(rig.chrono->dcsc().completed_measurements(), 0u);
  // Probed flags must not leak without bound: pending victims stay bounded by a few rounds
  // of the per-process victim quota.
  EXPECT_LT(rig.chrono->dcsc().pending_victims(), 1000u);
}

}  // namespace
}  // namespace chronotier
