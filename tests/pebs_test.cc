// Tests for the PEBS sampling model: period behaviour, rate cap, overhead accounting.

#include <gtest/gtest.h>

#include "src/pebs/pebs.h"

namespace chronotier {
namespace {

TEST(PebsTest, SamplesAtConfiguredAverageRate) {
  PebsConfig config;
  config.period = 9;  // One sample per ~10 accesses on average (gap is jittered).
  config.max_samples_per_sec = 1000000;
  PebsSampler sampler(config);
  int samples = 0;
  sampler.set_handler([&samples](const PebsSample&) { ++samples; });
  for (int i = 0; i < 100000; ++i) {
    sampler.OnAccess(i * 100, 0, 1, kFastNode, false);
  }
  EXPECT_NEAR(samples, 10000, 500);
  EXPECT_EQ(sampler.events_seen(), 100000u);
}

TEST(PebsTest, DeliveredSamplesCarryContext) {
  PebsConfig config;
  config.period = 0;  // Every access sampled.
  PebsSampler sampler(config);
  PebsSample seen;
  sampler.set_handler([&seen](const PebsSample& sample) { seen = sample; });
  sampler.OnAccess(123456, 7, 0xABC, kSlowNode, true);
  EXPECT_EQ(seen.time, 123456);
  EXPECT_EQ(seen.pid, 7);
  EXPECT_EQ(seen.vpn, 0xABCu);
  EXPECT_EQ(seen.node, kSlowNode);
  EXPECT_TRUE(seen.is_store);
}

TEST(PebsTest, RateCapThrottlesWithinSecond) {
  PebsConfig config;
  config.period = 0;
  config.max_samples_per_sec = 100;
  PebsSampler sampler(config);
  int samples = 0;
  sampler.set_handler([&samples](const PebsSample&) { ++samples; });
  // 1000 accesses inside one simulated second: only 100 delivered.
  for (int i = 0; i < 1000; ++i) {
    sampler.OnAccess(i * kMicrosecond, 0, 1, kFastNode, false);
  }
  EXPECT_EQ(samples, 100);
  EXPECT_EQ(sampler.samples_throttled(), 900u);
}

TEST(PebsTest, RateCapResetsEachSecond) {
  PebsConfig config;
  config.period = 0;
  config.max_samples_per_sec = 10;
  PebsSampler sampler(config);
  int samples = 0;
  sampler.set_handler([&samples](const PebsSample&) { ++samples; });
  for (int second = 0; second < 3; ++second) {
    for (int i = 0; i < 100; ++i) {
      sampler.OnAccess(second * kSecond + i * kMicrosecond, 0, 1, kFastNode, false);
    }
  }
  EXPECT_EQ(samples, 30);  // 10 per second across 3 seconds.
}

TEST(PebsTest, DeliveredSamplesChargeOverhead) {
  PebsConfig config;
  config.period = 0;
  config.per_sample_overhead = 400;
  PebsSampler sampler(config);
  EXPECT_EQ(sampler.OnAccess(0, 0, 1, kFastNode, false), 400);
}

TEST(PebsTest, SkippedAccessesAreFree) {
  PebsConfig config;
  config.period = 99;
  PebsSampler sampler(config);
  sampler.OnAccess(0, 0, 1, kFastNode, false);  // First access samples.
  // The jittered gap is at least period/2: the next 49 accesses cannot sample.
  for (int i = 1; i < 49; ++i) {
    EXPECT_EQ(sampler.OnAccess(i, 0, 1, kFastNode, false), 0) << i;
  }
}

TEST(PebsTest, ThrottledSamplesAreFree) {
  PebsConfig config;
  config.period = 0;
  config.max_samples_per_sec = 1;
  PebsSampler sampler(config);
  EXPECT_GT(sampler.OnAccess(0, 0, 1, kFastNode, false), 0);
  EXPECT_EQ(sampler.OnAccess(1, 0, 1, kFastNode, false), 0);  // Throttled.
}

TEST(PebsTest, ResetCountersClearsStatistics) {
  PebsSampler sampler(PebsConfig{});
  for (int i = 0; i < 1000; ++i) {
    sampler.OnAccess(i, 0, 1, kFastNode, false);
  }
  EXPECT_GT(sampler.events_seen(), 0u);
  sampler.ResetCounters();
  EXPECT_EQ(sampler.events_seen(), 0u);
  EXPECT_EQ(sampler.samples_delivered(), 0u);
  EXPECT_EQ(sampler.samples_throttled(), 0u);
}

// Property sweep: whatever the period, delivered+skipped accounting is consistent.
class PebsPeriodTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PebsPeriodTest, DeliveryRateMatchesPeriod) {
  PebsConfig config;
  config.period = GetParam();
  config.max_samples_per_sec = 1u << 30;
  PebsSampler sampler(config);
  constexpr int kAccesses = 100000;
  for (int i = 0; i < kAccesses; ++i) {
    sampler.OnAccess(i, 0, 1, kFastNode, false);
  }
  const double expected = static_cast<double>(kAccesses) / (GetParam() + 1);
  // Gap jitter is uniform around the period; the delivery rate still matches on average.
  EXPECT_NEAR(static_cast<double>(sampler.samples_delivered()), expected, expected * 0.05 + 2);
}

INSTANTIATE_TEST_SUITE_P(Periods, PebsPeriodTest, ::testing::Values(0, 1, 7, 99, 199, 997));

}  // namespace
}  // namespace chronotier
