// Parameterized property tests: invariants that must hold for every policy, page size, and
// seed combination, checked after end-to-end runs. These catch frame leaks, LRU corruption,
// flag leaks and clock regressions that scenario tests can miss.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "src/core/controls.h"
#include "src/core/standard_policies.h"
#include "src/harness/machine.h"
#include "src/workloads/patterns.h"

namespace chronotier {
namespace {

ScanGeometry PropertyGeometry() {
  ScanGeometry geometry;
  geometry.scan_period = 2 * kSecond;
  geometry.scan_step_pages = 512;
  return geometry;
}

using PropertyParam = std::tuple<int /*policy index*/, PageSizeKind, uint64_t /*seed*/>;

class MachineInvariantTest : public ::testing::TestWithParam<PropertyParam> {
 protected:
  std::unique_ptr<Machine> RunMachine() {
    const auto [policy_index, page_kind, seed] = GetParam();
    auto policies = StandardPolicySet(PropertyGeometry());
    MachineConfig config = MachineConfig::StandardTwoTier(8192, 0.25);
    config.bandwidth_scale = 64.0;
    auto machine = std::make_unique<Machine>(
        config, policies[static_cast<size_t>(policy_index)].make());

    for (int p = 0; p < 2; ++p) {
      Process& process = machine->CreateProcess("proc");
      process.set_default_page_kind(page_kind);
      HotsetConfig w;
      w.working_set_bytes = 2048 * kBasePageSize;
      w.hot_fraction = 0.2;
      w.hot_access_fraction = 0.9;
      w.per_op_delay = kMicrosecond;
      w.sequential_init = true;
      machine->AttachWorkload(process, std::make_unique<HotsetStream>(w),
                              seed + static_cast<uint64_t>(p));
    }
    machine->Start();
    machine->Run(8 * kSecond);
    return machine;
  }
};

TEST_P(MachineInvariantTest, FrameAccountingBalances) {
  auto machine = RunMachine();
  // Present base pages across all address spaces, plus the target frames reserved by
  // in-flight (non-exclusive copy) migration transactions, == used frames across all tiers.
  uint64_t present = 0;
  for (auto& process : machine->processes()) {
    process->aspace().ForEachPage([&](Vma& vma, PageInfo& page) {
      PageInfo& unit = vma.HotnessUnit(page.vpn);
      if (&unit == &page && unit.present()) {
        present += vma.UnitPages(unit.vpn);
      }
    });
  }
  EXPECT_EQ(present + machine->migration().inflight_reserved_pages(),
            machine->memory().total_used_pages());
}

TEST_P(MachineInvariantTest, ResidencyCountersMatchPageTables) {
  auto machine = RunMachine();
  for (auto& process : machine->processes()) {
    uint64_t fast = 0;
    uint64_t slow = 0;
    process->aspace().ForEachPage([&](Vma& vma, PageInfo& page) {
      PageInfo& unit = vma.HotnessUnit(page.vpn);
      if (&unit == &page && unit.present()) {
        (unit.node == kFastNode ? fast : slow) += vma.UnitPages(unit.vpn);
      }
    });
    EXPECT_EQ(process->resident_pages(kFastNode), fast);
    EXPECT_EQ(process->resident_pages(kSlowNode), slow);
  }
}

TEST_P(MachineInvariantTest, LruListsHoldExactlyTheResidentUnits) {
  auto machine = RunMachine();
  uint64_t units_on_node[2] = {0, 0};
  for (auto& process : machine->processes()) {
    process->aspace().ForEachPage([&](Vma& vma, PageInfo& page) {
      PageInfo& unit = vma.HotnessUnit(page.vpn);
      if (&unit == &page && unit.present()) {
        ASSERT_NE(unit.lru_state(), LruMembership::kNone);
        ++units_on_node[unit.node];
      } else if (&unit != &page) {
        // Tail pages of unsplit huge groups never sit on LRU lists.
        EXPECT_EQ(page.lru_state(), LruMembership::kNone);
      }
    });
  }
  EXPECT_EQ(machine->lru(kFastNode).total(), units_on_node[0]);
  EXPECT_EQ(machine->lru(kSlowNode).total(), units_on_node[1]);
}

TEST_P(MachineInvariantTest, NodeFieldsAreValidForPresentUnits) {
  auto machine = RunMachine();
  for (auto& process : machine->processes()) {
    process->aspace().ForEachPage([&](Vma& vma, PageInfo& page) {
      PageInfo& unit = vma.HotnessUnit(page.vpn);
      if (unit.present()) {
        EXPECT_GE(unit.node, 0);
        EXPECT_LT(unit.node, machine->memory().num_nodes());
      }
    });
  }
}

TEST_P(MachineInvariantTest, MetricsAreInternallyConsistent) {
  auto machine = RunMachine();
  const Metrics& metrics = machine->metrics();
  EXPECT_EQ(metrics.total_ops(), metrics.reads() + metrics.writes());
  EXPECT_EQ(metrics.total_ops(), metrics.fast_accesses() + metrics.slow_accesses());
  EXPECT_GE(metrics.context_switches(), metrics.hint_faults());
  EXPECT_GE(metrics.promoted_pages(), 0u);
  // Process clocks never run behind the global clock at quiescence.
  for (auto& process : machine->processes()) {
    EXPECT_GE(process->clock(), machine->now() - machine->config().process_quantum);
  }
}

TEST_P(MachineInvariantTest, QueuedFlagsAreBounded) {
  auto machine = RunMachine();
  // Any page still flagged kPageQueued must be present (policies may hold queued work, but
  // never on torn-down/impossible pages).
  for (auto& process : machine->processes()) {
    process->aspace().ForEachPage([&](Vma& vma, PageInfo& page) {
      PageInfo& unit = vma.HotnessUnit(page.vpn);
      if (unit.Has(kPageQueued)) {
        EXPECT_TRUE(unit.present());
      }
      (void)vma;
    });
  }
}

std::string PropertyParamName(const ::testing::TestParamInfo<PropertyParam>& info) {
  const int policy = std::get<0>(info.param);
  const PageSizeKind kind = std::get<1>(info.param);
  const uint64_t seed = std::get<2>(info.param);
  const char* names[] = {"LinuxNB", "AutoTiering", "MultiClock", "TPP", "Memtis", "Chrono"};
  return std::string(names[policy]) + (kind == PageSizeKind::kHuge ? "_huge_" : "_base_") +
         std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyPageSeedSweep, MachineInvariantTest,
    ::testing::Combine(::testing::Values(0, 2, 4, 5),  // Linux-NB, Multi-Clock, Memtis, Chrono.
                       ::testing::Values(PageSizeKind::kBase, PageSizeKind::kHuge),
                       ::testing::Values(11u, 77u)),
    PropertyParamName);

// --- runtime controls (procfs analogue) ---

TEST(ChronoControlsTest, SetAndShow) {
  ChronoConfig config = ChronoConfig::Manual(64.0);
  config.geometry = PropertyGeometry();
  ChronoPolicy policy(config);
  ChronoControls controls(&policy);

  EXPECT_TRUE(controls.Set("cit_threshold_ms=250"));
  EXPECT_EQ(policy.cit_threshold_ms(), 250u);

  const std::string shown = controls.Show();
  EXPECT_NE(shown.find("cit_threshold_ms=250"), std::string::npos);
  EXPECT_NE(shown.find("rate_limit_mbps="), std::string::npos);
}

TEST(ChronoControlsTest, RateLimitClampsToBounds) {
  ChronoConfig config = ChronoConfig::Manual(64.0);
  ChronoPolicy policy(config);
  ChronoControls controls(&policy);
  EXPECT_TRUE(controls.Set("rate_limit_mbps=999999"));
  EXPECT_LE(policy.rate_limit_mbps(), config.max_rate_limit_mbps);
  EXPECT_TRUE(controls.Set("rate_limit_mbps=0.001"));
  EXPECT_GE(policy.rate_limit_mbps(), config.min_rate_limit_mbps);
}

TEST(ChronoControlsTest, RejectsMalformedInput) {
  ChronoPolicy policy(ChronoConfig::Full());
  ChronoControls controls(&policy);
  EXPECT_FALSE(controls.Set("cit_threshold_ms"));       // No '='.
  EXPECT_FALSE(controls.Set("cit_threshold_ms=abc"));   // Not a number.
  EXPECT_FALSE(controls.Set("rate_limit_mbps=-5"));     // Non-positive.
  EXPECT_FALSE(controls.Set("unknown_param=1"));        // Unknown name.
  EXPECT_FALSE(controls.Set("cit_threshold_ms=12x"));   // Trailing junk.
}

TEST(ChronoControlsTest, SetAllCountsSuccesses) {
  ChronoPolicy policy(ChronoConfig::Full());
  ChronoControls controls(&policy);
  EXPECT_EQ(controls.SetAll({"cit_threshold_ms=100", "bogus=1", "rate_limit_mbps=32"}), 2);
  EXPECT_EQ(policy.cit_threshold_ms(), 100u);
  EXPECT_DOUBLE_EQ(policy.rate_limit_mbps(), 32.0);
}

TEST(ChronoControlsTest, ThresholdOverrideClampsToConfiguredBounds) {
  ChronoConfig config = ChronoConfig::Full();
  ChronoPolicy policy(config);
  policy.OverrideCitThreshold(0);
  EXPECT_GE(policy.cit_threshold_ms(),
            static_cast<uint32_t>(config.min_cit_threshold / kMillisecond));
  policy.OverrideCitThreshold(0xFFFFFFFFu);
  EXPECT_LE(policy.cit_threshold_ms(),
            static_cast<uint32_t>(config.max_cit_threshold / kMillisecond));
}

}  // namespace
}  // namespace chronotier
