# Empty dependencies file for fig01_access_frequency.
# This may be replaced when dependencies are built.
