file(REMOVE_RECURSE
  "CMakeFiles/fig01_access_frequency.dir/fig01_access_frequency.cc.o"
  "CMakeFiles/fig01_access_frequency.dir/fig01_access_frequency.cc.o.d"
  "fig01_access_frequency"
  "fig01_access_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_access_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
