# Empty dependencies file for fig02b_pebs_bins.
# This may be replaced when dependencies are built.
