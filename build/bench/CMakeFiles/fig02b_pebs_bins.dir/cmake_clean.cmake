file(REMOVE_RECURSE
  "CMakeFiles/fig02b_pebs_bins.dir/fig02b_pebs_bins.cc.o"
  "CMakeFiles/fig02b_pebs_bins.dir/fig02b_pebs_bins.cc.o.d"
  "fig02b_pebs_bins"
  "fig02b_pebs_bins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02b_pebs_bins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
