file(REMOVE_RECURSE
  "CMakeFiles/fig02a_identification.dir/fig02a_identification.cc.o"
  "CMakeFiles/fig02a_identification.dir/fig02a_identification.cc.o.d"
  "fig02a_identification"
  "fig02a_identification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02a_identification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
