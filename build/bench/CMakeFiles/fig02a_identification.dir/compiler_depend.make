# Empty compiler generated dependencies file for fig02a_identification.
# This may be replaced when dependencies are built.
