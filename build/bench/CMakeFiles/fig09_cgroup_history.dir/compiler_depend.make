# Empty compiler generated dependencies file for fig09_cgroup_history.
# This may be replaced when dependencies are built.
