file(REMOVE_RECURSE
  "CMakeFiles/fig09_cgroup_history.dir/fig09_cgroup_history.cc.o"
  "CMakeFiles/fig09_cgroup_history.dir/fig09_cgroup_history.cc.o.d"
  "fig09_cgroup_history"
  "fig09_cgroup_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_cgroup_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
