file(REMOVE_RECURSE
  "CMakeFiles/appendix_b_theory.dir/appendix_b_theory.cc.o"
  "CMakeFiles/appendix_b_theory.dir/appendix_b_theory.cc.o.d"
  "appendix_b_theory"
  "appendix_b_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_b_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
