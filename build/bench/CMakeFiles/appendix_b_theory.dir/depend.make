# Empty dependencies file for appendix_b_theory.
# This may be replaced when dependencies are built.
