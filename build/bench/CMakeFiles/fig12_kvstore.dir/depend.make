# Empty dependencies file for fig12_kvstore.
# This may be replaced when dependencies are built.
