file(REMOVE_RECURSE
  "CMakeFiles/fig12_kvstore.dir/fig12_kvstore.cc.o"
  "CMakeFiles/fig12_kvstore.dir/fig12_kvstore.cc.o.d"
  "fig12_kvstore"
  "fig12_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
