file(REMOVE_RECURSE
  "CMakeFiles/fig11_graph500.dir/fig11_graph500.cc.o"
  "CMakeFiles/fig11_graph500.dir/fig11_graph500.cc.o.d"
  "fig11_graph500"
  "fig11_graph500.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_graph500.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
