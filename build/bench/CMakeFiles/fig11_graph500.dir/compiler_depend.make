# Empty compiler generated dependencies file for fig11_graph500.
# This may be replaced when dependencies are built.
