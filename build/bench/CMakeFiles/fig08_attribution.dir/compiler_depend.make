# Empty compiler generated dependencies file for fig08_attribution.
# This may be replaced when dependencies are built.
