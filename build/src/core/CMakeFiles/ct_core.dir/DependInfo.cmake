
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/candidate_filter.cc" "src/core/CMakeFiles/ct_core.dir/candidate_filter.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/candidate_filter.cc.o.d"
  "/root/repo/src/core/chrono_config.cc" "src/core/CMakeFiles/ct_core.dir/chrono_config.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/chrono_config.cc.o.d"
  "/root/repo/src/core/chrono_policy.cc" "src/core/CMakeFiles/ct_core.dir/chrono_policy.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/chrono_policy.cc.o.d"
  "/root/repo/src/core/controls.cc" "src/core/CMakeFiles/ct_core.dir/controls.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/controls.cc.o.d"
  "/root/repo/src/core/dcsc.cc" "src/core/CMakeFiles/ct_core.dir/dcsc.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/dcsc.cc.o.d"
  "/root/repo/src/core/estimator.cc" "src/core/CMakeFiles/ct_core.dir/estimator.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/estimator.cc.o.d"
  "/root/repo/src/core/promotion_queue.cc" "src/core/CMakeFiles/ct_core.dir/promotion_queue.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/promotion_queue.cc.o.d"
  "/root/repo/src/core/standard_policies.cc" "src/core/CMakeFiles/ct_core.dir/standard_policies.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/standard_policies.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/ct_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/ct_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/ct_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/pebs/CMakeFiles/ct_pebs.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ct_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ct_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
