file(REMOVE_RECURSE
  "CMakeFiles/ct_core.dir/candidate_filter.cc.o"
  "CMakeFiles/ct_core.dir/candidate_filter.cc.o.d"
  "CMakeFiles/ct_core.dir/chrono_config.cc.o"
  "CMakeFiles/ct_core.dir/chrono_config.cc.o.d"
  "CMakeFiles/ct_core.dir/chrono_policy.cc.o"
  "CMakeFiles/ct_core.dir/chrono_policy.cc.o.d"
  "CMakeFiles/ct_core.dir/controls.cc.o"
  "CMakeFiles/ct_core.dir/controls.cc.o.d"
  "CMakeFiles/ct_core.dir/dcsc.cc.o"
  "CMakeFiles/ct_core.dir/dcsc.cc.o.d"
  "CMakeFiles/ct_core.dir/estimator.cc.o"
  "CMakeFiles/ct_core.dir/estimator.cc.o.d"
  "CMakeFiles/ct_core.dir/promotion_queue.cc.o"
  "CMakeFiles/ct_core.dir/promotion_queue.cc.o.d"
  "CMakeFiles/ct_core.dir/standard_policies.cc.o"
  "CMakeFiles/ct_core.dir/standard_policies.cc.o.d"
  "libct_core.a"
  "libct_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
