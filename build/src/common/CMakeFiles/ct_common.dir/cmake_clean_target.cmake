file(REMOVE_RECURSE
  "libct_common.a"
)
