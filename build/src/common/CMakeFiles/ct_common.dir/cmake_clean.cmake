file(REMOVE_RECURSE
  "CMakeFiles/ct_common.dir/histogram.cc.o"
  "CMakeFiles/ct_common.dir/histogram.cc.o.d"
  "CMakeFiles/ct_common.dir/rng.cc.o"
  "CMakeFiles/ct_common.dir/rng.cc.o.d"
  "CMakeFiles/ct_common.dir/stats.cc.o"
  "CMakeFiles/ct_common.dir/stats.cc.o.d"
  "CMakeFiles/ct_common.dir/table.cc.o"
  "CMakeFiles/ct_common.dir/table.cc.o.d"
  "CMakeFiles/ct_common.dir/time.cc.o"
  "CMakeFiles/ct_common.dir/time.cc.o.d"
  "libct_common.a"
  "libct_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
