file(REMOVE_RECURSE
  "CMakeFiles/ct_mem.dir/tier.cc.o"
  "CMakeFiles/ct_mem.dir/tier.cc.o.d"
  "CMakeFiles/ct_mem.dir/tiered_memory.cc.o"
  "CMakeFiles/ct_mem.dir/tiered_memory.cc.o.d"
  "libct_mem.a"
  "libct_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
