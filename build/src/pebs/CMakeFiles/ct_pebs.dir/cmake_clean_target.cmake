file(REMOVE_RECURSE
  "libct_pebs.a"
)
