# Empty dependencies file for ct_pebs.
# This may be replaced when dependencies are built.
