file(REMOVE_RECURSE
  "CMakeFiles/ct_pebs.dir/pebs.cc.o"
  "CMakeFiles/ct_pebs.dir/pebs.cc.o.d"
  "libct_pebs.a"
  "libct_pebs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_pebs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
