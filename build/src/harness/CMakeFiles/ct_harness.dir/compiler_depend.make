# Empty compiler generated dependencies file for ct_harness.
# This may be replaced when dependencies are built.
