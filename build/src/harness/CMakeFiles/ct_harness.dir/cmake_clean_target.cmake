file(REMOVE_RECURSE
  "libct_harness.a"
)
