file(REMOVE_RECURSE
  "CMakeFiles/ct_harness.dir/experiment.cc.o"
  "CMakeFiles/ct_harness.dir/experiment.cc.o.d"
  "CMakeFiles/ct_harness.dir/machine.cc.o"
  "CMakeFiles/ct_harness.dir/machine.cc.o.d"
  "CMakeFiles/ct_harness.dir/metrics.cc.o"
  "CMakeFiles/ct_harness.dir/metrics.cc.o.d"
  "libct_harness.a"
  "libct_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
