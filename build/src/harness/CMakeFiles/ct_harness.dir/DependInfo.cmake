
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/experiment.cc" "src/harness/CMakeFiles/ct_harness.dir/experiment.cc.o" "gcc" "src/harness/CMakeFiles/ct_harness.dir/experiment.cc.o.d"
  "/root/repo/src/harness/machine.cc" "src/harness/CMakeFiles/ct_harness.dir/machine.cc.o" "gcc" "src/harness/CMakeFiles/ct_harness.dir/machine.cc.o.d"
  "/root/repo/src/harness/metrics.cc" "src/harness/CMakeFiles/ct_harness.dir/metrics.cc.o" "gcc" "src/harness/CMakeFiles/ct_harness.dir/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ct_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ct_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/ct_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/pebs/CMakeFiles/ct_pebs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
