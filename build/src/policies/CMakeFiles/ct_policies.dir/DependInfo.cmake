
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policies/autotiering.cc" "src/policies/CMakeFiles/ct_policies.dir/autotiering.cc.o" "gcc" "src/policies/CMakeFiles/ct_policies.dir/autotiering.cc.o.d"
  "/root/repo/src/policies/linux_nb.cc" "src/policies/CMakeFiles/ct_policies.dir/linux_nb.cc.o" "gcc" "src/policies/CMakeFiles/ct_policies.dir/linux_nb.cc.o.d"
  "/root/repo/src/policies/memtis.cc" "src/policies/CMakeFiles/ct_policies.dir/memtis.cc.o" "gcc" "src/policies/CMakeFiles/ct_policies.dir/memtis.cc.o.d"
  "/root/repo/src/policies/multiclock.cc" "src/policies/CMakeFiles/ct_policies.dir/multiclock.cc.o" "gcc" "src/policies/CMakeFiles/ct_policies.dir/multiclock.cc.o.d"
  "/root/repo/src/policies/scan_policy_base.cc" "src/policies/CMakeFiles/ct_policies.dir/scan_policy_base.cc.o" "gcc" "src/policies/CMakeFiles/ct_policies.dir/scan_policy_base.cc.o.d"
  "/root/repo/src/policies/tpp.cc" "src/policies/CMakeFiles/ct_policies.dir/tpp.cc.o" "gcc" "src/policies/CMakeFiles/ct_policies.dir/tpp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/ct_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/ct_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/pebs/CMakeFiles/ct_pebs.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ct_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ct_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
