file(REMOVE_RECURSE
  "CMakeFiles/ct_policies.dir/autotiering.cc.o"
  "CMakeFiles/ct_policies.dir/autotiering.cc.o.d"
  "CMakeFiles/ct_policies.dir/linux_nb.cc.o"
  "CMakeFiles/ct_policies.dir/linux_nb.cc.o.d"
  "CMakeFiles/ct_policies.dir/memtis.cc.o"
  "CMakeFiles/ct_policies.dir/memtis.cc.o.d"
  "CMakeFiles/ct_policies.dir/multiclock.cc.o"
  "CMakeFiles/ct_policies.dir/multiclock.cc.o.d"
  "CMakeFiles/ct_policies.dir/scan_policy_base.cc.o"
  "CMakeFiles/ct_policies.dir/scan_policy_base.cc.o.d"
  "CMakeFiles/ct_policies.dir/tpp.cc.o"
  "CMakeFiles/ct_policies.dir/tpp.cc.o.d"
  "libct_policies.a"
  "libct_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
