file(REMOVE_RECURSE
  "libct_policies.a"
)
