# Empty compiler generated dependencies file for ct_policies.
# This may be replaced when dependencies are built.
