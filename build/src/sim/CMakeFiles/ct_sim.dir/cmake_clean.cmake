file(REMOVE_RECURSE
  "CMakeFiles/ct_sim.dir/event_queue.cc.o"
  "CMakeFiles/ct_sim.dir/event_queue.cc.o.d"
  "libct_sim.a"
  "libct_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
