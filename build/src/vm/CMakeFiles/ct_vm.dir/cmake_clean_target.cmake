file(REMOVE_RECURSE
  "libct_vm.a"
)
