
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/address_space.cc" "src/vm/CMakeFiles/ct_vm.dir/address_space.cc.o" "gcc" "src/vm/CMakeFiles/ct_vm.dir/address_space.cc.o.d"
  "/root/repo/src/vm/lru.cc" "src/vm/CMakeFiles/ct_vm.dir/lru.cc.o" "gcc" "src/vm/CMakeFiles/ct_vm.dir/lru.cc.o.d"
  "/root/repo/src/vm/scanner.cc" "src/vm/CMakeFiles/ct_vm.dir/scanner.cc.o" "gcc" "src/vm/CMakeFiles/ct_vm.dir/scanner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ct_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ct_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
