file(REMOVE_RECURSE
  "CMakeFiles/ct_vm.dir/address_space.cc.o"
  "CMakeFiles/ct_vm.dir/address_space.cc.o.d"
  "CMakeFiles/ct_vm.dir/lru.cc.o"
  "CMakeFiles/ct_vm.dir/lru.cc.o.d"
  "CMakeFiles/ct_vm.dir/scanner.cc.o"
  "CMakeFiles/ct_vm.dir/scanner.cc.o.d"
  "libct_vm.a"
  "libct_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
