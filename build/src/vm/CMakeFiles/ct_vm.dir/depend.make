# Empty dependencies file for ct_vm.
# This may be replaced when dependencies are built.
