
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/graph500.cc" "src/workloads/CMakeFiles/ct_workloads.dir/graph500.cc.o" "gcc" "src/workloads/CMakeFiles/ct_workloads.dir/graph500.cc.o.d"
  "/root/repo/src/workloads/kvstore.cc" "src/workloads/CMakeFiles/ct_workloads.dir/kvstore.cc.o" "gcc" "src/workloads/CMakeFiles/ct_workloads.dir/kvstore.cc.o.d"
  "/root/repo/src/workloads/patterns.cc" "src/workloads/CMakeFiles/ct_workloads.dir/patterns.cc.o" "gcc" "src/workloads/CMakeFiles/ct_workloads.dir/patterns.cc.o.d"
  "/root/repo/src/workloads/pmbench.cc" "src/workloads/CMakeFiles/ct_workloads.dir/pmbench.cc.o" "gcc" "src/workloads/CMakeFiles/ct_workloads.dir/pmbench.cc.o.d"
  "/root/repo/src/workloads/trace.cc" "src/workloads/CMakeFiles/ct_workloads.dir/trace.cc.o" "gcc" "src/workloads/CMakeFiles/ct_workloads.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ct_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/ct_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ct_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
