file(REMOVE_RECURSE
  "CMakeFiles/ct_workloads.dir/graph500.cc.o"
  "CMakeFiles/ct_workloads.dir/graph500.cc.o.d"
  "CMakeFiles/ct_workloads.dir/kvstore.cc.o"
  "CMakeFiles/ct_workloads.dir/kvstore.cc.o.d"
  "CMakeFiles/ct_workloads.dir/patterns.cc.o"
  "CMakeFiles/ct_workloads.dir/patterns.cc.o.d"
  "CMakeFiles/ct_workloads.dir/pmbench.cc.o"
  "CMakeFiles/ct_workloads.dir/pmbench.cc.o.d"
  "CMakeFiles/ct_workloads.dir/trace.cc.o"
  "CMakeFiles/ct_workloads.dir/trace.cc.o.d"
  "libct_workloads.a"
  "libct_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
