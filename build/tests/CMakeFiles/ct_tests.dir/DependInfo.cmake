
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/chrono_policy_test.cc" "tests/CMakeFiles/ct_tests.dir/chrono_policy_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/chrono_policy_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/ct_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/ct_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/estimator_test.cc" "tests/CMakeFiles/ct_tests.dir/estimator_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/estimator_test.cc.o.d"
  "/root/repo/tests/harness_test.cc" "tests/CMakeFiles/ct_tests.dir/harness_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/harness_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/ct_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/mem_test.cc" "tests/CMakeFiles/ct_tests.dir/mem_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/mem_test.cc.o.d"
  "/root/repo/tests/pebs_test.cc" "tests/CMakeFiles/ct_tests.dir/pebs_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/pebs_test.cc.o.d"
  "/root/repo/tests/policies_test.cc" "tests/CMakeFiles/ct_tests.dir/policies_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/policies_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/ct_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/scan_daemon_test.cc" "tests/CMakeFiles/ct_tests.dir/scan_daemon_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/scan_daemon_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/ct_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/three_tier_test.cc" "tests/CMakeFiles/ct_tests.dir/three_tier_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/three_tier_test.cc.o.d"
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/ct_tests.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/trace_test.cc.o.d"
  "/root/repo/tests/vm_test.cc" "tests/CMakeFiles/ct_tests.dir/vm_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/vm_test.cc.o.d"
  "/root/repo/tests/workloads_test.cc" "tests/CMakeFiles/ct_tests.dir/workloads_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ct_core.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/ct_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/ct_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ct_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/pebs/CMakeFiles/ct_pebs.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/ct_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ct_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ct_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
