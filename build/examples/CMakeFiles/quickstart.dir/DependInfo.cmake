
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cc" "examples/CMakeFiles/quickstart.dir/quickstart.cc.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ct_core.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/ct_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/ct_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ct_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/pebs/CMakeFiles/ct_pebs.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/ct_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ct_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ct_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
