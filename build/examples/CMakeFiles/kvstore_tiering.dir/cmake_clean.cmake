file(REMOVE_RECURSE
  "CMakeFiles/kvstore_tiering.dir/kvstore_tiering.cc.o"
  "CMakeFiles/kvstore_tiering.dir/kvstore_tiering.cc.o.d"
  "kvstore_tiering"
  "kvstore_tiering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
