# Empty dependencies file for kvstore_tiering.
# This may be replaced when dependencies are built.
