#include "tools/detlint/config.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace detlint {
namespace {

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

// Strips a trailing `# comment`, respecting double-quoted strings.
std::string StripComment(const std::string& line) {
  bool in_string = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') {
      in_string = !in_string;
    } else if (c == '#' && !in_string) {
      return line.substr(0, i);
    }
  }
  return line;
}

// Parses `["a", "b"]` or a bare `"a"` into elements.
bool ParseStringArray(const std::string& value, std::vector<std::string>* out,
                      std::string* what) {
  std::string v = Trim(value);
  const bool bracketed = !v.empty() && v.front() == '[';
  if (bracketed) {
    if (v.back() != ']') {
      *what = "unterminated array";
      return false;
    }
    v = v.substr(1, v.size() - 2);
  }
  size_t i = 0;
  while (i < v.size()) {
    while (i < v.size() &&
           (std::isspace(static_cast<unsigned char>(v[i])) || v[i] == ',')) {
      ++i;
    }
    if (i >= v.size()) {
      break;
    }
    if (v[i] != '"') {
      *what = "expected quoted string";
      return false;
    }
    const size_t close = v.find('"', i + 1);
    if (close == std::string::npos) {
      *what = "unterminated string";
      return false;
    }
    out->push_back(v.substr(i + 1, close - i - 1));
    i = close + 1;
  }
  return true;
}

// Prefix-or-exact path match shared by allowlists, rule path sets, and scan
// excludes: an entry ending in '/' matches the subtree, otherwise exact.
bool PathMatches(const std::vector<std::string>& entries, const std::string& rel_path) {
  for (const std::string& entry : entries) {
    if (!entry.empty() && entry.back() == '/') {
      if (rel_path.compare(0, entry.size(), entry) == 0) {
        return true;
      }
    } else if (rel_path == entry) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool Config::Parse(const std::string& text, std::string* error) {
  std::istringstream in(text);
  std::string raw;
  std::string section;       // current rule name, empty outside [rule.*]
  bool in_scan = false;      // inside the [scan] section
  int line_no = 0;
  auto fail = [&](const std::string& what) {
    *error = "line " + std::to_string(line_no) + ": " + what;
    return false;
  };
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = Trim(StripComment(raw));
    if (line.empty()) {
      continue;
    }
    if (line.front() == '[') {
      if (line.back() != ']') {
        return fail("unterminated section header");
      }
      const std::string name = Trim(line.substr(1, line.size() - 2));
      if (name == "scan") {
        in_scan = true;
        section.clear();
        continue;
      }
      const std::string kPrefix = "rule.";
      if (name.compare(0, kPrefix.size(), kPrefix) != 0 ||
          name.size() == kPrefix.size()) {
        return fail("only [rule.<name>] and [scan] sections are supported, got [" +
                    name + "]");
      }
      in_scan = false;
      section = name.substr(kPrefix.size());
      rules_[section];  // materialize even if the section body is empty
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return fail("expected key = value");
    }
    if (section.empty() && !in_scan) {
      return fail("key outside of a [rule.<name>] or [scan] section");
    }
    const std::string key = Trim(line.substr(0, eq));
    std::string value = Trim(line.substr(eq + 1));
    // Multi-line array: consume lines until the closing ']' arrives.
    if (!value.empty() && value.front() == '[') {
      while (value.back() != ']' && std::getline(in, raw)) {
        ++line_no;
        const std::string cont = Trim(StripComment(raw));
        if (cont.empty()) {
          continue;
        }
        value += " " + cont;
      }
      if (value.back() != ']') {
        return fail("unterminated array");
      }
    }
    std::string what;
    std::vector<std::string>* target = nullptr;
    if (in_scan) {
      if (key == "exclude") {
        target = &scan_exclude_;
      } else {
        return fail("unknown [scan] key '" + key + "'");
      }
    } else if (key == "allow") {
      target = &rules_[section].allow;
    } else if (key == "rng_tokens") {
      target = &rules_[section].rng_tokens;
    } else if (key == "layers") {
      target = &rules_[section].layers;
    } else if (key == "paths") {
      target = &rules_[section].paths;
    } else if (key == "classes") {
      target = &rules_[section].classes;
    } else {
      return fail("unknown key '" + key + "'");
    }
    if (!ParseStringArray(value, target, &what)) {
      return fail(what);
    }
  }
  return true;
}

bool Config::Load(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open config file: " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str(), error);
}

bool Config::IsPathAllowed(const std::string& rule, const std::string& rel_path) const {
  const auto it = rules_.find(rule);
  return it != rules_.end() && PathMatches(it->second.allow, rel_path);
}

bool Config::IsPathInRuleSet(const std::string& rule, const std::string& rel_path) const {
  const auto it = rules_.find(rule);
  return it != rules_.end() && PathMatches(it->second.paths, rel_path);
}

const std::vector<std::string>& Config::RngTokens() const {
  const auto it = rules_.find("unseeded-shuffle");
  if (it != rules_.end() && !it->second.rng_tokens.empty()) {
    return it->second.rng_tokens;
  }
  return default_rng_tokens_;
}

const std::vector<std::string>& Config::Layers() const {
  const auto it = rules_.find("subsystem-layering");
  return it != rules_.end() ? it->second.layers : empty_;
}

const std::vector<std::string>& Config::PurityClasses() const {
  const auto it = rules_.find("observational-purity");
  return it != rules_.end() ? it->second.classes : empty_;
}

}  // namespace detlint
