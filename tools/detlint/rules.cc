#include "tools/detlint/rules.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "tools/detlint/graph.h"
#include "tools/detlint/symbols.h"
#include "tools/detlint/tokens.h"

namespace detlint {
namespace {

const RuleInfo kIoError = {
    "DL000", "io-error", Severity::kError,
    "a listed file could not be read — fix the path or permissions; detlint exits 2 "
    "(lint broke) rather than 1 (tree dirty)"};
const RuleInfo kWallClock = {
    "DL001", "wall-clock", Severity::kError,
    "all time must come from the simulated clock (src/common/time.h) and all randomness "
    "from a seeded Rng (src/common/rng.h); bench wall-timing belongs in the config "
    "allowlist"};
const RuleInfo kAssert = {
    "DL002", "assert", Severity::kError,
    "use CHECK/CHECK_EQ/... from src/common/check.h — assert() compiles out under NDEBUG"};
const RuleInfo kUnorderedIter = {
    "DL003", "unordered-iter", Severity::kError,
    "iterate a deterministically ordered copy (or a std::map keyed by a value), or "
    "annotate the line: // detlint:allow(unordered-iter) <why order cannot leak>"};
const RuleInfo kPointerSort = {
    "DL004", "pointer-sort", Severity::kError,
    "sort by a value key (vpn, id, tick) — pointer order differs from run to run"};
const RuleInfo kUnseededShuffle = {
    "DL005", "unseeded-shuffle", Severity::kError,
    "pass a seeded project RNG (see rng_tokens in tools/detlint/detlint.toml)"};
const RuleInfo kPragmaOnce = {
    "DL006", "pragma-once", Severity::kError,
    "add #pragma once as the first directive of the header"};
const RuleInfo kUsingNamespaceHeader = {
    "DL007", "using-namespace-header", Severity::kError,
    "qualify the names or move the using-directive into a .cc file"};
const RuleInfo kNakedNew = {
    "DL008", "naked-new", Severity::kError,
    "use std::make_unique/containers; raw allocation files are allowlisted in "
    "tools/detlint/detlint.toml"};
const RuleInfo kStdFunctionHotPath = {
    "DL009", "std-function-hot-path", Severity::kError,
    "hot-path headers (src/vm, src/sim) must not traffic in std::function — every "
    "capture heap-allocates and every call is an indirect dispatch; use a template "
    "visitor or InlineFunction (src/common/inline_function.h)"};
const RuleInfo kSubsystemLayering = {
    "DL010", "subsystem-layering", Severity::kError,
    "includes must follow the layer DAG in tools/detlint/detlint.toml "
    "([rule.subsystem-layering] layers, lowest first); invert the dependency, move the "
    "shared type down a layer, or re-rank the subsystem in a reviewed config diff"};
const RuleInfo kHotPathAlloc = {
    "DL011", "hot-path-alloc", Severity::kError,
    "declared hot-path files must not allocate: preallocate in setup (reserve/fixed "
    "arrays), use SlotArena (src/common/slab.h) or InlineFunction; setup-only sites "
    "take an inline allow with the justification"};
const RuleInfo kObservationalPurity = {
    "DL012", "observational-purity", Severity::kError,
    "observer-side code (src/trace) must not call mutators of the simulation — take "
    "const refs, copy into the trace ring, or move the logic to the simulation side; "
    "this is the static twin of the trace on/off bitwise-identity proof"};
const RuleInfo kDeadSymbol = {
    "DL013", "dead-symbol", Severity::kWarn,
    "delete the function or its declaration; if it is API surface kept on purpose, "
    "annotate the declaration: // detlint:allow(dead-symbol) <why it stays>"};

// Keywords that legitimately precede a call expression; any other identifier
// directly before `name(` makes it a declaration (`SimTime time() const`), not
// a call.
bool IsExpressionKeyword(const std::string& text) {
  static const std::set<std::string> kKeywords = {
      "return", "co_return", "co_yield", "co_await", "throw", "case",
      "else",   "do",        "and",      "or",       "not"};
  return kKeywords.count(text) != 0;
}

class RuleRunner {
 public:
  RuleRunner(const LexedFile& file, const Config& config,
             const std::vector<std::string>& extra_unordered_names)
      : file_(file), config_(config), t_(file.tokens) {
    for (const std::string& name : CollectUnorderedNames(file)) {
      unordered_names_.insert(name);
    }
    for (const std::string& name : extra_unordered_names) {
      unordered_names_.insert(name);
    }
  }

  std::vector<Finding> Run() {
    WallClock();
    Assert();
    UnorderedIter();
    PointerSort();
    UnseededShuffle();
    HeaderHygiene();
    NakedNew();
    StdFunctionHotPath();
    HotPathAlloc();
    std::sort(findings_.begin(), findings_.end(), FindingLess);
    findings_.erase(std::unique(findings_.begin(), findings_.end(),
                                [](const Finding& a, const Finding& b) {
                                  return a.file == b.file && a.line == b.line &&
                                         a.rule == b.rule;
                                }),
                    findings_.end());
    return std::move(findings_);
  }

 private:
  void Report(const RuleInfo& rule, int line, std::string message) {
    ReportUnlessSuppressed(file_, rule, line, std::move(message), config_, &findings_);
  }

  // DL001: ambient time / entropy identifiers, and ambient-function calls.
  void WallClock() {
    static const std::set<std::string> kBannedIdentifiers = {
        "system_clock", "steady_clock", "high_resolution_clock", "random_device"};
    static const std::set<std::string> kBannedCalls = {
        "time", "rand", "srand", "getenv", "gettimeofday", "clock_gettime"};
    for (size_t i = 0; i < t_.size(); ++i) {
      const Token& tok = t_.At(i);
      if (tok.kind != TokenKind::kIdentifier) {
        continue;
      }
      if (kBannedIdentifiers.count(tok.text) != 0) {
        Report(kWallClock, tok.line, "ambient entropy/clock source '" + tok.text + "'");
        continue;
      }
      if (kBannedCalls.count(tok.text) != 0 && t_.IsPunct(i + 1, '(') &&
          !t_.IsMemberAccess(i)) {
        // Skip declarations: `SimTime time() const` has a type name before it.
        const Token& prev = t_.At(i == 0 ? 0 : i - 1);
        if (i > 0 && prev.kind == TokenKind::kIdentifier &&
            !IsExpressionKeyword(prev.text)) {
          continue;
        }
        Report(kWallClock, tok.line, "call to ambient function '" + tok.text + "()'");
      }
    }
  }

  // DL002: assert( outside member access. ASSERT_EQ/static_assert are distinct
  // identifier tokens and never match.
  void Assert() {
    for (size_t i = 0; i < t_.size(); ++i) {
      if (t_.IsId(i, "assert") && t_.IsPunct(i + 1, '(') && !t_.IsMemberAccess(i)) {
        Report(kAssert, t_.At(i).line, "assert() vanishes under NDEBUG");
      }
    }
  }

  // DL003: range-for over an unordered container, or an explicit iterator walk
  // via <name>.begin()/cbegin()/rbegin().
  void UnorderedIter() {
    for (size_t i = 0; i < t_.size(); ++i) {
      // Range-for: `for ( ... : range-expr )` with a top-level single `:`.
      if (t_.IsId(i, "for") && t_.IsPunct(i + 1, '(')) {
        const size_t close = t_.MatchBalanced(i + 1, '(', ')');
        if (close == Tokens::kNpos) {
          continue;
        }
        size_t colon = Tokens::kNpos;
        int depth = 0;
        bool classic_for = false;
        for (size_t j = i + 1; j <= close; ++j) {
          if (t_.IsPunct(j, '(') || t_.IsPunct(j, '[') || t_.IsPunct(j, '{')) {
            ++depth;
          } else if (t_.IsPunct(j, ')') || t_.IsPunct(j, ']') || t_.IsPunct(j, '}')) {
            --depth;
          } else if (depth == 1 && t_.IsPunct(j, ';')) {
            classic_for = true;
            break;
          } else if (depth == 1 && t_.IsPunct(j, ':') && !t_.IsPunct(j - 1, ':') &&
                     !t_.IsPunct(j + 1, ':')) {
            colon = j;
            break;
          }
        }
        if (classic_for || colon == Tokens::kNpos) {
          continue;
        }
        for (size_t j = colon + 1; j < close; ++j) {
          const Token& tok = t_.At(j);
          if (tok.kind != TokenKind::kIdentifier) {
            continue;
          }
          if (tok.text == "unordered_map" || tok.text == "unordered_set" ||
              (unordered_names_.count(tok.text) != 0 && !t_.IsMemberAccess(j))) {
            Report(kUnorderedIter, t_.At(i).line,
                   "range-for over unordered container '" + tok.text + "'");
            break;
          }
        }
      }
      // Iterator walk: name.begin( / name.cbegin( / name.rbegin(.
      const Token& tok = t_.At(i);
      if (tok.kind == TokenKind::kIdentifier && unordered_names_.count(tok.text) != 0 &&
          t_.IsPunct(i + 1, '.')) {
        const Token& member = t_.At(i + 2);
        if (member.kind == TokenKind::kIdentifier &&
            (member.text == "begin" || member.text == "cbegin" ||
             member.text == "rbegin" || member.text == "crbegin") &&
            t_.IsPunct(i + 3, '(')) {
          Report(kUnorderedIter, tok.line,
                 "iterator over unordered container '" + tok.text + "'");
        }
      }
    }
  }

  // DL004: std::sort/std::stable_sort whose lambda comparator orders two
  // pointer-typed parameters by their raw values (`a < b`, `&a < &b`).
  void PointerSort() {
    for (size_t i = 0; i + 4 < t_.size(); ++i) {
      size_t name = t_.MatchStdQualified(i, "sort");
      if (name == Tokens::kNpos) {
        name = t_.MatchStdQualified(i, "stable_sort");
      }
      if (name == Tokens::kNpos || !t_.IsPunct(name + 1, '(')) {
        continue;
      }
      const size_t call_close = t_.MatchBalanced(name + 1, '(', ')');
      if (call_close == Tokens::kNpos) {
        continue;
      }
      CheckComparatorLambda(name + 2, call_close);
    }
  }

  void CheckComparatorLambda(size_t begin, size_t end) {
    // Find a lambda introducer `[` ... `]` `(` inside the call.
    for (size_t i = begin; i < end; ++i) {
      if (!t_.IsPunct(i, '[')) {
        continue;
      }
      const size_t intro_close = t_.MatchBalanced(i, '[', ']');
      if (intro_close == Tokens::kNpos || intro_close >= end ||
          !t_.IsPunct(intro_close + 1, '(')) {
        continue;
      }
      const size_t params_close = t_.MatchBalanced(intro_close + 1, '(', ')');
      if (params_close == Tokens::kNpos || params_close >= end) {
        continue;
      }
      // Parameters: pointer-ness = a `*` token anywhere in the parameter,
      // name = the parameter's last identifier.
      std::set<std::string> pointer_params;
      std::string last_ident;
      bool saw_star = false;
      for (size_t j = intro_close + 2; j <= params_close; ++j) {
        if (t_.IsPunct(j, ',') || j == params_close) {
          if (saw_star && !last_ident.empty()) {
            pointer_params.insert(last_ident);
          }
          last_ident.clear();
          saw_star = false;
          continue;
        }
        if (t_.IsPunct(j, '*')) {
          saw_star = true;
        } else if (t_.At(j).kind == TokenKind::kIdentifier) {
          last_ident = t_.At(j).text;
        }
      }
      if (pointer_params.empty()) {
        return;
      }
      // Body: first `{` after the parameter list (skips mutable/noexcept and a
      // trailing return type).
      size_t body_open = Tokens::kNpos;
      for (size_t j = params_close + 1; j < end; ++j) {
        if (t_.IsPunct(j, '{')) {
          body_open = j;
          break;
        }
      }
      if (body_open == Tokens::kNpos) {
        return;
      }
      const size_t body_close = t_.MatchBalanced(body_open, '{', '}');
      const size_t stop = body_close == Tokens::kNpos ? end : body_close;
      for (size_t j = body_open + 1; j < stop; ++j) {
        if (!(t_.IsPunct(j, '<') || t_.IsPunct(j, '>'))) {
          continue;
        }
        // Skip <=, >=, <<, >>, -> and template-ish neighbors.
        if (t_.IsPunct(j + 1, '=') || t_.IsPunct(j + 1, '<') || t_.IsPunct(j + 1, '>') ||
            t_.IsPunct(j - 1, '<') || t_.IsPunct(j - 1, '>') || t_.IsPunct(j - 1, '-')) {
          continue;
        }
        if (BareParam(j - 1, pointer_params, /*left=*/true) &&
            BareParam(j + 1, pointer_params, /*left=*/false)) {
          Report(kPointerSort, t_.At(j).line,
                 "sort comparator orders by raw pointer value");
          return;
        }
      }
      return;  // only inspect the first lambda (the comparator)
    }
  }

  // True when token i is a bare occurrence of a pointer parameter (possibly
  // behind a unary `&`), not a member access like a->field.
  bool BareParam(size_t i, const std::set<std::string>& params, bool left) {
    const Token& tok = t_.At(i);
    if (tok.kind != TokenKind::kIdentifier || params.count(tok.text) == 0) {
      return false;
    }
    if (left) {
      // a->field < b  — the identifier left of `<` must not be a member name.
      if (t_.IsMemberAccess(i)) {
        return false;
      }
    } else {
      // a < b->field  — the identifier right of `<` must not start an access.
      if (t_.IsPunct(i + 1, '.') || (t_.IsPunct(i + 1, '-') && t_.IsPunct(i + 2, '>'))) {
        return false;
      }
    }
    return true;
  }

  // DL005: std::shuffle / std::sample whose arguments never mention a project
  // RNG marker token.
  void UnseededShuffle() {
    for (size_t i = 0; i + 4 < t_.size(); ++i) {
      size_t name = t_.MatchStdQualified(i, "shuffle");
      if (name == Tokens::kNpos) {
        name = t_.MatchStdQualified(i, "sample");
      }
      if (name == Tokens::kNpos || !t_.IsPunct(name + 1, '(')) {
        continue;
      }
      const size_t close = t_.MatchBalanced(name + 1, '(', ')');
      if (close == Tokens::kNpos) {
        continue;
      }
      bool seeded = false;
      for (size_t j = name + 2; j < close && !seeded; ++j) {
        const Token& tok = t_.At(j);
        if (tok.kind != TokenKind::kIdentifier) {
          continue;
        }
        for (const std::string& marker : config_.RngTokens()) {
          if (tok.text.find(marker) != std::string::npos) {
            seeded = true;
            break;
          }
        }
      }
      if (!seeded) {
        Report(kUnseededShuffle, t_.At(name).line,
               "std::" + t_.At(name).text + " without a seeded project RNG argument");
      }
    }
  }

  // DL006 + DL007: header-only hygiene.
  void HeaderHygiene() {
    if (!IsHeaderPath(file_.path)) {
      return;
    }
    if (!file_.has_pragma_once) {
      Report(kPragmaOnce, 1, "header is missing #pragma once");
    }
    for (size_t i = 0; i + 1 < t_.size(); ++i) {
      if (t_.IsId(i, "using") && t_.IsId(i + 1, "namespace")) {
        Report(kUsingNamespaceHeader, t_.At(i).line,
               "using-directive at header scope leaks into every includer");
      }
    }
  }

  // DL008: raw new / delete. `operator new/delete` declarations and
  // `= delete;` function deletion are not allocations.
  void NakedNew() {
    for (size_t i = 0; i < t_.size(); ++i) {
      const bool is_new = t_.IsId(i, "new");
      const bool is_delete = t_.IsId(i, "delete");
      if (!is_new && !is_delete) {
        continue;
      }
      if (i > 0 && t_.IsId(i - 1, "operator")) {
        continue;
      }
      if (is_delete &&
          (t_.IsPunct(i + 1, ';') || t_.IsPunct(i + 1, ',') || t_.IsPunct(i + 1, ')') ||
           t_.IsPunct(i + 1, '>'))) {
        continue;  // deleted function / defaulted-family contexts
      }
      Report(kNakedNew, t_.At(i).line,
             is_new ? "raw new expression" : "raw delete expression");
    }
  }

  // DL009: any std::function mention in a hot-path header. Scoped to headers under
  // src/vm/ and src/sim/ — the layers the per-access and per-event loops live in —
  // where a std::function parameter or member means a heap-allocated callable and an
  // indirect call on paths that run millions of times per simulated second. Aliases
  // count too: exporting `using Fn = std::function<...>` from a hot-path header just
  // moves the allocation to the caller.
  void StdFunctionHotPath() {
    if (!IsHeaderPath(file_.path)) {
      return;
    }
    if (file_.path.rfind("src/vm/", 0) != 0 && file_.path.rfind("src/sim/", 0) != 0) {
      return;
    }
    for (size_t i = 0; i < t_.size(); ++i) {
      if (t_.MatchStdQualified(i, "function") != Tokens::kNpos) {
        Report(kStdFunctionHotPath, t_.At(i).line,
               "std::function in hot-path header " + file_.path);
      }
    }
  }

  // DL011: allocation in a declared hot-path file ([rule.hot-path-alloc] paths):
  // non-placement `new`, make_unique/make_shared, std::string construction (a
  // `std::string` mention that is not a reference), and growing container calls
  // (push_back / emplace_back / resize). PR 8 made these files allocation-free;
  // this keeps them that way. Placement new is storage reuse, not allocation,
  // and is skipped; `std::string&` binds without constructing and is skipped.
  void HotPathAlloc() {
    if (!config_.IsPathInRuleSet(kHotPathAlloc.name, file_.path)) {
      return;
    }
    static const std::set<std::string> kGrowers = {"push_back", "emplace_back", "resize"};
    for (size_t i = 0; i < t_.size(); ++i) {
      if (t_.IsId(i, "new") && !t_.IsPunct(i + 1, '(') &&
          !(i > 0 && t_.IsId(i - 1, "operator"))) {
        Report(kHotPathAlloc, t_.At(i).line, "heap allocation (new) on a hot path");
        continue;
      }
      const Token& tok = t_.At(i);
      if (tok.kind != TokenKind::kIdentifier) {
        continue;
      }
      if ((tok.text == "make_unique" || tok.text == "make_shared") &&
          t_.IsPunct(i + 1, '<')) {
        Report(kHotPathAlloc, tok.line, "heap allocation (" + tok.text + ") on a hot path");
        continue;
      }
      size_t name = t_.MatchStdQualified(i, "string");
      if (name != Tokens::kNpos && !t_.IsPunct(name + 1, '&')) {
        Report(kHotPathAlloc, tok.line,
               "std::string construction on a hot path (references are fine)");
        continue;
      }
      if (kGrowers.count(tok.text) != 0 && t_.IsPunct(i + 1, '(') && t_.IsMemberAccess(i)) {
        Report(kHotPathAlloc, tok.line,
               "growing container call '" + tok.text + "' on a hot path");
      }
    }
  }

  const LexedFile& file_;
  const Config& config_;
  Tokens t_;
  std::set<std::string> unordered_names_;
  std::vector<Finding> findings_;
};

}  // namespace

const std::vector<RuleInfo>& AllRules() {
  static const std::vector<RuleInfo> kRules = {
      kIoError,          kWallClock,       kAssert,
      kUnorderedIter,    kPointerSort,     kUnseededShuffle,
      kPragmaOnce,       kUsingNamespaceHeader, kNakedNew,
      kStdFunctionHotPath, kSubsystemLayering, kHotPathAlloc,
      kObservationalPurity, kDeadSymbol};
  return kRules;
}

const RuleInfo& RuleById(const char* id) {
  for (const RuleInfo& rule : AllRules()) {
    if (std::strcmp(rule.id, id) == 0) {
      return rule;
    }
  }
  // Unreachable for registered IDs; a typo in a cross-TU pass fails loudly.
  std::abort();
}

bool FindingLess(const Finding& a, const Finding& b) {
  if (a.file != b.file) {
    return a.file < b.file;
  }
  if (a.line != b.line) {
    return a.line < b.line;
  }
  return std::strcmp(a.rule->id, b.rule->id) < 0;
}

void ReportUnlessSuppressed(const LexedFile& file, const RuleInfo& rule, int line,
                            std::string message, const Config& config,
                            std::vector<Finding>* out) {
  if (config.IsPathAllowed(rule.name, file.path)) {
    return;
  }
  if (IsSuppressed(file, line, rule.name)) {
    return;
  }
  out->push_back(Finding{file.path, line, &rule, std::move(message)});
}

std::vector<std::string> CollectUnorderedNames(const LexedFile& file) {
  std::vector<std::string> names;
  const Tokens t(file.tokens);
  for (size_t i = 0; i < t.size(); ++i) {
    if (!(t.IsId(i, "unordered_map") || t.IsId(i, "unordered_set"))) {
      continue;
    }
    if (!t.IsPunct(i + 1, '<')) {
      continue;
    }
    // Walk the template argument list by angle-bracket depth.
    int depth = 0;
    size_t j = i + 1;
    for (; j < t.size(); ++j) {
      if (t.IsPunct(j, '<')) {
        ++depth;
      } else if (t.IsPunct(j, '>')) {
        if (--depth == 0) {
          break;
        }
      } else if (t.IsPunct(j, ';')) {
        break;  // malformed / not a declaration
      }
    }
    if (j >= t.size() || depth != 0) {
      continue;
    }
    // Skip declarator decorations (`>& samples`, `>* p`, `> const& m`) so
    // reference/pointer parameters still register as unordered containers.
    size_t k = j + 1;
    while (t.IsPunct(k, '&') || t.IsPunct(k, '*') || t.IsId(k, "const")) {
      ++k;
    }
    const Token& after = t.At(k);
    if (after.kind != TokenKind::kIdentifier) {
      continue;  // `>::iterator`, `>{...}` temporaries, etc.
    }
    if (t.IsPunct(k + 1, '(')) {
      continue;  // function declaration returning the container
    }
    names.push_back(after.text);
  }
  return names;
}

std::vector<Finding> RunRules(const LexedFile& file, const Config& config,
                              const std::vector<std::string>& extra_unordered_names) {
  return RuleRunner(file, config, extra_unordered_names).Run();
}

bool CollectSourceFiles(const std::string& root, const std::vector<std::string>& paths,
                        const Config& config, std::vector<std::string>* files,
                        std::string* error) {
  namespace fs = std::filesystem;
  const fs::path root_path(root);
  auto excluded = [&config](const std::string& rel) {
    for (const std::string& entry : config.ScanExcludes()) {
      if (!entry.empty() && entry.back() == '/') {
        if (rel.compare(0, entry.size(), entry) == 0) {
          return true;
        }
      } else if (rel == entry) {
        return true;
      }
    }
    return false;
  };
  for (const std::string& rel : paths) {
    const fs::path full = root_path / rel;
    std::error_code ec;
    if (fs::is_regular_file(full, ec)) {
      if (!excluded(rel)) {
        files->push_back(rel);
      }
      continue;
    }
    if (!fs::is_directory(full, ec)) {
      *error = "no such file or directory: " + full.string();
      return false;
    }
    for (fs::recursive_directory_iterator it(full, ec), end; it != end;
         it.increment(ec)) {
      if (ec) {
        *error = "cannot walk " + full.string() + ": " + ec.message();
        return false;
      }
      if (!it->is_regular_file()) {
        continue;
      }
      const std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cc") {
        continue;
      }
      const std::string rel_path = fs::relative(it->path(), root_path).generic_string();
      if (!excluded(rel_path)) {
        files->push_back(rel_path);
      }
    }
  }
  std::sort(files->begin(), files->end());
  files->erase(std::unique(files->begin(), files->end()), files->end());
  return true;
}

std::vector<Finding> AnalyzeFiles(const std::string& root,
                                  const std::vector<std::string>& rel_paths,
                                  const Config& config) {
  std::vector<Finding> findings;
  std::map<std::string, LexedFile> lexed;          // rel path -> lexed file
  std::map<std::string, std::vector<std::string>> header_names;
  for (const std::string& rel : rel_paths) {
    std::ifstream in(root + "/" + rel, std::ios::binary);
    if (!in) {
      findings.push_back(Finding{rel, 0, &kIoError, "cannot read file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    LexedFile file = Lex(rel, buf.str());
    if (IsHeaderPath(rel)) {
      header_names[rel] = CollectUnorderedNames(file);
    }
    lexed.emplace(rel, std::move(file));
  }
  for (const auto& [rel, file] : lexed) {
    // Cross-seed container names from this file's directly included project
    // headers, so members declared in foo.h are known when foo.cc iterates.
    std::vector<std::string> extra;
    for (const IncludeRef& inc : file.includes) {
      const auto it = header_names.find(inc.path);
      if (it != header_names.end()) {
        extra.insert(extra.end(), it->second.begin(), it->second.end());
      }
    }
    std::vector<Finding> file_findings = RunRules(file, config, extra);
    findings.insert(findings.end(), file_findings.begin(), file_findings.end());
  }
  // Cross-TU passes: the include graph and the symbol layer see every file in
  // the batch at once.
  for (auto* pass : {&CheckLayering, &CheckObservationalPurity, &CheckDeadSymbols}) {
    std::vector<Finding> pass_findings = (*pass)(lexed, config);
    findings.insert(findings.end(), pass_findings.begin(), pass_findings.end());
  }
  std::sort(findings.begin(), findings.end(), FindingLess);
  return findings;
}

}  // namespace detlint
