// detlint symbol layer: function boundaries and per-file symbol sets, harvested
// from the lexer's token stream — still no compiler frontend.
//
// Three consumers:
//   * DL012 observational-purity: NonConstMethods() harvests the mutator-name
//     set of watched classes (Machine, MigrationEngine, TenantRegistry) from
//     their headers; any `.name(` / `->name(` call in observer-side code whose
//     name is in the set is a finding. This is the static analogue of the
//     trace subsystem's bitwise on/off-identity proof.
//   * DL013 dead-symbol: ParseFunctions() marks every declaration/definition
//     name token, so a name occurrence anywhere *else* counts as a reference;
//     a function declared in a src/ header with zero references is dead.
//   * future passes that need "who declares / who calls" without a build.
//
// The parser is conservative by construction: when a token sequence is
// ambiguous it classifies toward "reference", which can only under-report
// DL013 (a live function is never flagged because a use was missed — the
// failure mode is a dead function surviving, acceptable at warn tier).

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/detlint/config.h"
#include "tools/detlint/lexer.h"
#include "tools/detlint/rules.h"

namespace detlint {

// One function declaration or definition found in a file.
struct FunctionSym {
  std::string name;       // unqualified name
  std::string qualifier;  // enclosing class, or "Class" from a Class::name definition
  int line = 0;
  size_t name_index = 0;  // token index of the name in the file's token stream
  bool is_definition = false;  // a body follows in this file
};

// Per-file symbol harvest.
struct FileSymbols {
  std::vector<FunctionSym> functions;
  // Token indexes that are declaration/definition name positions — every other
  // occurrence of a name is a reference.
  std::set<size_t> decl_name_indexes;
};

// Parses function boundaries: free functions, class methods (in-body and
// out-of-line `Class::name` definitions), declarations ending in ';'.
// Constructors, destructors, and operators are recognized and skipped — they
// are structural, not symbols a dead-code pass should reason about.
FileSymbols ParseFunctions(const LexedFile& file);

// Non-const member function names of `class_name` harvested from `file`
// (methods of nested classes excluded). Empty when the class has no body here.
std::set<std::string> NonConstMethods(const LexedFile& file, const std::string& class_name);

// DL012: files in the rule's `paths` set may not call (via `.`/`->`/`::`) any
// non-const method of a class in the rule's `classes` set.
std::vector<Finding> CheckObservationalPurity(
    const std::map<std::string, LexedFile>& files, const Config& config);

// DL013: functions declared in headers under the rule's `paths` set with no
// reference from any analyzed TU. References include preprocessor directive
// bodies (macro-expanded calls count as uses). Warn tier.
std::vector<Finding> CheckDeadSymbols(const std::map<std::string, LexedFile>& files,
                                      const Config& config);

}  // namespace detlint
