// detlint fixture: classic include guards without #pragma once — DL006 fires
// at line 1.
#ifndef TOOLS_DETLINT_FIXTURES_PRAGMA_ONCE_DIRTY_H_
#define TOOLS_DETLINT_FIXTURES_PRAGMA_ONCE_DIRTY_H_

inline int Guarded() { return 1; }

#endif  // TOOLS_DETLINT_FIXTURES_PRAGMA_ONCE_DIRTY_H_
