// detlint fixture: look-alikes that must NOT trigger DL002.
#define MY_ASSERT_EQ(a, b) ((a) == (b) ? 0 : 1)

struct Harness {
  void assert_state();  // member named assert_state, different identifier
};

void Uses(Harness& h, int x, int y) {
  static_assert(sizeof(int) >= 4, "distinct token");
  MY_ASSERT_EQ(x, y);        // macro name is a different identifier
  h.assert_state();
  const char* s = "assert(inside a string literal)";
  (void)s;
  (void)x;
  (void)y;
}
