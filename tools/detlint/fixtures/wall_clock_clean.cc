// detlint fixture: none of these may trigger DL001.
#include <cstdint>

// A steady_clock mention in a comment is prose, not a finding.
struct Sim {
  int64_t time() const { return now_; }  // declaration: type name precedes it
  int64_t now_ = 0;
};

int64_t Uses(const Sim& sim) {
  const char* msg = "do not use std::chrono::steady_clock or rand() here";
  int64_t at = sim.time();  // member access, not ::time()
  return at + (msg != nullptr ? 1 : 0);
}
