// detlint fixture: unordered lookups and ordered-container loops must NOT
// trigger DL003.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

uint64_t Lookups(uint64_t key) {
  std::unordered_map<uint64_t, uint64_t> counts;
  std::map<uint64_t, uint64_t> ordered;
  std::vector<uint64_t> values;
  counts[key] = 1;
  uint64_t total = counts.count(key);
  const auto it = counts.find(key);
  if (it != counts.end()) {
    counts.erase(it);
  }
  for (const auto& [k, v] : ordered) {  // std::map iterates in key order
    total += k + v;
  }
  for (const uint64_t v : values) {
    total += v;
  }
  counts.clear();
  return total;
}
