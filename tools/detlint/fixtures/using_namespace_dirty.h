// detlint fixture: DL007 using-namespace-header must fire.
#pragma once

#include <string>

using namespace std;  // line 6: DL007

inline string Name() { return "leaky"; }
