// DL010 cycle fixture, half B: includes A, closing the cycle.
#pragma once

#include "src/mem/cyc_a.h"

namespace chronotier {

inline int CycB() { return 2; }

}  // namespace chronotier
