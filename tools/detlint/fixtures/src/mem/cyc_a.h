// DL010 cycle fixture, half A: includes B, which includes A back.
#pragma once

#include "src/mem/cyc_b.h"

namespace chronotier {

inline int CycA() { return 1; }

}  // namespace chronotier
