// DL011 suppressed fixture: justified same-line and comment-above allows.
#include <vector>

namespace chronotier {

void Setup(std::vector<int>& v, int x) {
  v.push_back(x);  // detlint:allow(hot-path-alloc) setup-time, runs once before the access loop
  // detlint:allow(hot-path-alloc) warmup growth, steady state never resizes
  v.resize(64);
}

}  // namespace chronotier
