// DL011 clean fixture: references bind without constructing, reserve is not
// growth, and indexing preallocated storage allocates nothing.
#include <string>
#include <vector>

namespace chronotier {

int Measure(const std::string& name, std::vector<int>& v) {
  v.reserve(128);
  v[0] = static_cast<int>(name.size());
  return v[0];
}

}  // namespace chronotier
