// DL011 dirty fixture: every allocation form the rule catches, in a hot-path file.
#include <memory>
#include <string>
#include <vector>

namespace chronotier {

void Grow(std::vector<int>& v, int x) {
  v.push_back(x);
  v.resize(32);
}

int Allocate() {
  auto p = std::make_unique<int>(3);
  std::string label = "hot";
  int* raw = new int(4);
  const int sum = *p + *raw + static_cast<int>(label.size());
  delete raw;
  return sum;
}

}  // namespace chronotier
