#pragma once

#include <functional>

// detlint:allow(std-function-hot-path) cold-path debug hook, invoked once per run
void InstallDebugHook(const std::function<void(int)>& hook);
