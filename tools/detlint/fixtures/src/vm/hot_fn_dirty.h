#pragma once

#include <functional>

// A std::function parameter and an exported alias in a hot-path header: both
// must fire DL009.
void VisitPages(const std::function<void(int)>& visitor);

using PageVisitor = std::function<void(int)>;
