// DL013 fixture TU: defines both helpers, calls only one.
#include "src/dead/api.h"

namespace chronotier {

int UsedHelper(int x) { return x + 1; }
int OrphanHelper(int x) { return x - 1; }

int Driver(int x) { return UsedHelper(x); }

}  // namespace chronotier
