// DL013 fixture: one referenced function, one orphan declaration.
#pragma once

namespace chronotier {

int UsedHelper(int x);
int OrphanHelper(int x);

}  // namespace chronotier
