// DL013 suppressed fixture: the orphan is annotated as kept API surface.
#pragma once

namespace chronotier {

int KeptOrphan(int x);  // detlint:allow(dead-symbol) public API kept for downstream experiments

}  // namespace chronotier
