// DL010 fixture: src/rogue appears in no layer of the DAG.

namespace chronotier {

int RogueThing() { return 3; }

}  // namespace chronotier
