// DL012 clean fixture: observers may read const state all they like.
#include "src/harness/machine_api.h"

namespace chronotier {

int SnapshotTick(const Machine& m) {
  return m.ticks();
}

}  // namespace chronotier
