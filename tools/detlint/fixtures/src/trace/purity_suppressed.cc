// DL012 suppressed fixture: a justified allow on the mutator call.
#include "src/harness/machine_api.h"

namespace chronotier {

void ReplayTick(Machine& m) {
  m.Step();  // detlint:allow(observational-purity) replay driver, not an observer; file is trace-side for its parsers
}

}  // namespace chronotier
