// DL012 dirty fixture: observer-side code steering the simulation.
#include "src/harness/machine_api.h"

namespace chronotier {

void RecordTick(Machine& m) {
  m.Step();
}

}  // namespace chronotier
