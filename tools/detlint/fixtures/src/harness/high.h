// DL010 fixture: a high-ranked (harness) header that lower layers must not include.
#pragma once

namespace chronotier {

inline int HarnessLevelThing() { return 42; }

}  // namespace chronotier
