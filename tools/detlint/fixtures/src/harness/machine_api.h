// DL012 fixture: a watched simulation class with one mutator and one const
// accessor. The purity pass harvests Step() as a mutator from this body.
#pragma once

namespace chronotier {

class Machine {
 public:
  void Step();
  int ticks() const { return ticks_; }

 private:
  int ticks_ = 0;
};

}  // namespace chronotier
