// DL010 clean fixture: harness (high rank) including sim (low rank) is the
// direction the DAG allows.
#include "src/sim/low.h"

namespace chronotier {

int HarnessUsesSim() { return SimLevelThing(); }

}  // namespace chronotier
