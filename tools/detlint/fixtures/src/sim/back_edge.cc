// DL010 dirty fixture: sim (low rank) reaching up into harness (high rank).
#include "src/harness/high.h"

namespace chronotier {

int SimUsesHarness() { return HarnessLevelThing(); }

}  // namespace chronotier
