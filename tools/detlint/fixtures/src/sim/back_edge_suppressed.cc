// DL010 suppressed fixture: the back-edge carries a justified inline allow.
#include "src/harness/high.h"  // detlint:allow(subsystem-layering) transitional edge while the helper moves down

namespace chronotier {

int SimUsesHarnessForNow() { return HarnessLevelThing(); }

}  // namespace chronotier
