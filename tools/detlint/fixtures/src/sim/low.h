// DL010 fixture: a low-ranked (sim) header anyone above may include.
#pragma once

namespace chronotier {

inline int SimLevelThing() { return 7; }

}  // namespace chronotier
