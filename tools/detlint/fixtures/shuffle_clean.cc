// detlint fixture: a shuffle fed by a seeded project RNG must NOT trigger
// DL005 (the argument mentions an rng marker token).
#include <algorithm>
#include <vector>

struct SeededRngAdapter {
  using result_type = unsigned long;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0UL; }
  result_type operator()() { return state_ += 0x9e3779b97f4a7c15UL; }
  result_type state_ = 1;
};

void Shuffle(std::vector<int>& values, SeededRngAdapter& rng) {
  std::shuffle(values.begin(), values.end(), rng);
}
