// detlint fixture: iterating a member whose unordered declaration lives in the
// included header must still trigger DL003.
#include "unordered_member.h"

uint64_t Ledger::Total() const {
  uint64_t total = 0;
  for (const auto& [key, value] : balances_) {  // line 7: DL003 via header seed
    total += value;
  }
  return total;
}
