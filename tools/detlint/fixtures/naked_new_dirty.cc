// detlint fixture: DL008 naked-new must fire on both the allocation and the
// matching delete.
struct Node {
  int value = 0;
};

int Leaky() {
  Node* node = new Node();  // line 8: DL008
  const int value = node->value;
  delete node;  // line 10: DL008
  return value;
}
