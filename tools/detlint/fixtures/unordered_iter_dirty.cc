// detlint fixture: DL003 unordered-iter must fire on both loop forms.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

uint64_t Iterates() {
  std::unordered_map<uint64_t, uint64_t> counts;
  std::unordered_set<uint64_t> members;
  uint64_t total = 0;
  for (const auto& [key, value] : counts) {  // line 10: DL003 (range-for)
    total += key + value;
  }
  for (auto it = members.begin(); it != members.end(); ++it) {  // line 13: DL003
    total += *it;
  }
  return total;
}
