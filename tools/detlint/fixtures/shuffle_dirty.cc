// detlint fixture: DL005 unseeded-shuffle must fire — the engine argument never
// names a project RNG.
#include <algorithm>
#include <random>
#include <vector>

void Shuffle(std::vector<int>& values, std::mt19937& gen) {
  std::shuffle(values.begin(), values.end(), gen);  // line 8: DL005
}
