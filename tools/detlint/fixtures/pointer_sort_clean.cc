// detlint fixture: value-keyed comparators must NOT trigger DL004, even over
// pointer elements.
#include <algorithm>
#include <vector>

struct Page {
  unsigned long vpn;
};

void SortByKey(std::vector<Page*>& pages, std::vector<unsigned long>& vpns) {
  std::sort(pages.begin(), pages.end(),
            [](const Page* a, const Page* b) { return a->vpn < b->vpn; });
  std::stable_sort(vpns.begin(), vpns.end(),
                   [](unsigned long a, unsigned long b) { return a < b; });
  std::sort(vpns.begin(), vpns.end());
}
