// detlint fixture: DL001 wall-clock must fire on every ambient source below.
// This file is intentionally dirty and is never compiled or tree-scanned.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

long Sources() {
  auto a = std::chrono::steady_clock::now();                  // line 9: DL001
  auto b = std::chrono::system_clock::now();                  // line 10: DL001
  auto c = std::chrono::high_resolution_clock::now();         // line 11: DL001
  std::random_device rd;                                      // line 12: DL001
  const long t = time(nullptr);                               // line 13: DL001
  const int r = rand();                                       // line 14: DL001
  const char* home = getenv("HOME");                          // line 15: DL001
  return a.time_since_epoch().count() + b.time_since_epoch().count() +
         c.time_since_epoch().count() + static_cast<long>(rd()) + t + r +
         (home != nullptr ? 1 : 0);
}
