// detlint fixture: declares an unordered member that unordered_member.cc
// iterates — exercises cross-file container-name seeding along #include edges.
#pragma once

#include <cstdint>
#include <unordered_map>

class Ledger {
 public:
  uint64_t Total() const;

 private:
  std::unordered_map<uint64_t, uint64_t> balances_;
};
