// detlint fixture: DL004 pointer-sort must fire — the comparator orders by raw
// pointer value, which differs between runs.
#include <algorithm>
#include <vector>

struct Page {
  unsigned long vpn;
};

void SortByAddress(std::vector<Page*>& pages) {
  std::sort(pages.begin(), pages.end(),
            [](const Page* a, const Page* b) { return a < b; });  // line 12: DL004
}
