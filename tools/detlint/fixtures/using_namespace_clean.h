// detlint fixture: using-declarations and namespace aliases must NOT trigger
// DL007 — only using-directives leak wholesale.
#pragma once

#include <string>

namespace fixture {

using std::string;
namespace alias = fixture;

inline string Name() { return "scoped"; }

}  // namespace fixture
