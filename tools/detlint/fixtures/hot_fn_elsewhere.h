#pragma once

#include <functional>

// std::function outside src/vm/ and src/sim/ is not DL009's business.
using FinishCallback = std::function<void(int)>;
