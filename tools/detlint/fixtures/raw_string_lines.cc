// Lexer fixture: a raw string spanning lines must not desync the line counter
// for rule sites after it.
static const char* kQuery = R"sql(
  SELECT vpn, hotness FROM pages;
  SELECT tick FROM events;
)sql";

void AfterRawString() {
  assert(kQuery != nullptr);
}
