// detlint fixture: both suppression placements silence DL003.
#include <cstdint>
#include <unordered_map>

uint64_t Suppressed() {
  std::unordered_map<uint64_t, uint64_t> counts;
  uint64_t total = 0;
  // detlint:allow(unordered-iter) unsigned summation commutes
  for (const auto& [key, value] : counts) {
    total += key + value;
  }
  for (const auto& [key, value] : counts) {  // detlint:allow(unordered-iter) sum commutes
    total += key * value;
  }
  return total;
}
