// detlint fixture: smart pointers, deleted functions, and operator new
// declarations must NOT trigger DL008.
#include <cstddef>
#include <memory>

struct Pinned {
  Pinned() = default;
  Pinned(const Pinned&) = delete;
  Pinned& operator=(const Pinned&) = delete;
  static void* operator new(std::size_t size);
  static void operator delete(void* p);
};

std::unique_ptr<int> Owned() { return std::make_unique<int>(7); }
