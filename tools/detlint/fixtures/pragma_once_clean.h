// detlint fixture: #pragma once satisfies DL006.
#pragma once

inline int Once() { return 1; }
