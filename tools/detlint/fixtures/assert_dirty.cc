// detlint fixture: DL002 assert must fire exactly once.
#include <cassert>

void Checked(int x) {
  assert(x > 0);  // line 5: DL002
}
