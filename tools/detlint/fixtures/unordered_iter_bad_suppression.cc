// detlint fixture: an allow annotation WITHOUT a justification does not
// suppress — DL003 still fires.
#include <cstdint>
#include <unordered_map>

uint64_t BadSuppression() {
  std::unordered_map<uint64_t, uint64_t> counts;
  uint64_t total = 0;
  // detlint:allow(unordered-iter)
  for (const auto& [key, value] : counts) {  // line 10: DL003 despite the allow
    total += key + value;
  }
  return total;
}
