// detlint lexer: a lightweight C++ tokenizer for determinism linting.
//
// This is deliberately not a compiler front end. Rules in rules.cc match token
// sequences, so the lexer's whole job is to produce a faithful token stream with
// line numbers while discarding everything that could cause false positives:
// comments (an `assert(` in prose is not a finding), string and character
// literals (a log message naming steady_clock is not a wall-clock read), and
// preprocessor directives (captured separately so the pragma-once and include
// rules can see them without `#define` bodies polluting the token stream).
//
// Two pieces of comment content ARE retained, because rules consume them:
//   * suppression annotations:  // detlint:allow(rule-a,rule-b) justification
//   * per-line code presence, so a suppression on its own line can cover the
//     line below it.

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace detlint {

enum class TokenKind {
  kIdentifier,  // [A-Za-z_][A-Za-z0-9_]*  (keywords included; rules do not care)
  kNumber,      // pp-number, consumed greedily
  kPunct,       // every operator/punctuator character, one token per character
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;
};

// One `// detlint:allow(...)` annotation.
struct Suppression {
  std::set<std::string> rules;    // rule names inside the parentheses
  bool has_reason = false;        // non-empty text followed the closing paren
  int line = 0;
  bool comment_only_line = false; // no code tokens share the annotation's line
};

// A captured preprocessor directive (continuations folded into one entry).
struct Directive {
  std::string text;  // full directive text, '#' included, whitespace-trimmed
  int line = 0;
};

// One quoted-form #include, with the line it sits on (include-graph findings
// anchor to the directive, not the file).
struct IncludeRef {
  std::string path;  // verbatim include path
  int line = 0;
};

struct LexedFile {
  std::string path;  // display / repo-relative path
  std::vector<Token> tokens;
  std::vector<Directive> directives;
  std::vector<IncludeRef> includes;        // quoted-form includes, in order
  std::map<int, Suppression> suppressions; // keyed by annotation line
  bool has_pragma_once = false;
};

// Tokenizes `content`. Never fails: unrecognized bytes are skipped.
LexedFile Lex(const std::string& path, const std::string& content);

// True when `rule` is suppressed at `line`: an annotation with a justification
// sits on the line itself or alone on the line directly above.
bool IsSuppressed(const LexedFile& file, int line, const std::string& rule);

}  // namespace detlint
