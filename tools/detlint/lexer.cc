#include "tools/detlint/lexer.h"

#include <cctype>
#include <cstddef>

namespace detlint {
namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Parses a `detlint:allow(rule-a, rule-b) reason` annotation out of a comment
// body. Returns false when the comment carries no annotation.
bool ParseAllow(const std::string& comment, Suppression* out) {
  const std::string kMarker = "detlint:allow(";
  const size_t at = comment.find(kMarker);
  if (at == std::string::npos) {
    return false;
  }
  const size_t open = at + kMarker.size() - 1;
  const size_t close = comment.find(')', open);
  if (close == std::string::npos) {
    return false;
  }
  std::string name;
  for (size_t i = open + 1; i <= close; ++i) {
    const char c = comment[i];
    if (c == ',' || c == ')') {
      if (!name.empty()) {
        out->rules.insert(name);
      }
      name.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      name.push_back(c);
    }
  }
  for (size_t i = close + 1; i < comment.size(); ++i) {
    if (!std::isspace(static_cast<unsigned char>(comment[i]))) {
      out->has_reason = true;
      break;
    }
  }
  return !out->rules.empty();
}

class Lexer {
 public:
  Lexer(const std::string& path, const std::string& content)
      : src_(content) {
    file_.path = path;
  }

  LexedFile Run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        BlockComment();
        continue;
      }
      if (c == '#' && AtLineStart()) {
        Preprocessor();
        continue;
      }
      if (c == '"' || c == '\'') {
        // Raw strings are handled in Identifier() (the R prefix is an ident char).
        QuotedLiteral(c);
        continue;
      }
      if (IsIdentStart(c)) {
        Identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        Number();
        continue;
      }
      Emit(TokenKind::kPunct, std::string(1, c));
      ++pos_;
    }
    // Mark comment-only suppression lines now that code presence is known.
    for (auto& [ln, sup] : file_.suppressions) {
      sup.comment_only_line = lines_with_code_.count(ln) == 0;
    }
    return std::move(file_);
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  // True when only whitespace precedes pos_ on the current line.
  bool AtLineStart() const {
    size_t i = pos_;
    while (i > 0) {
      const char c = src_[i - 1];
      if (c == '\n') {
        return true;
      }
      if (!std::isspace(static_cast<unsigned char>(c))) {
        return false;
      }
      --i;
    }
    return true;
  }

  void Emit(TokenKind kind, std::string text) {
    lines_with_code_.insert(line_);
    file_.tokens.push_back(Token{kind, std::move(text), line_});
  }

  void RecordComment(const std::string& body, int comment_line) {
    Suppression sup;
    if (ParseAllow(body, &sup)) {
      sup.line = comment_line;
      file_.suppressions[comment_line] = std::move(sup);
    }
  }

  void LineComment() {
    const int start_line = line_;
    size_t end = src_.find('\n', pos_);
    if (end == std::string::npos) {
      end = src_.size();
    }
    RecordComment(src_.substr(pos_, end - pos_), start_line);
    pos_ = end;  // newline handled by main loop
  }

  void BlockComment() {
    const int start_line = line_;
    size_t end = src_.find("*/", pos_ + 2);
    std::string body;
    if (end == std::string::npos) {
      body = src_.substr(pos_);
      pos_ = src_.size();
    } else {
      body = src_.substr(pos_, end + 2 - pos_);
      pos_ = end + 2;
    }
    for (const char c : body) {
      if (c == '\n') {
        ++line_;
      }
    }
    // Single-line /* detlint:allow(...) x */ works like a line comment.
    if (line_ == start_line) {
      RecordComment(body, start_line);
    }
  }

  void Preprocessor() {
    const int start_line = line_;
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        if (!text.empty() && text.back() == '\\') {
          text.pop_back();
          ++line_;
          ++pos_;
          continue;  // logical line continues
        }
        break;
      }
      if (c == '/' && Peek(1) == '/') {
        LineComment();
        break;
      }
      text.push_back(c);
      ++pos_;
    }
    // Trim trailing whitespace.
    while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
      text.pop_back();
    }
    Directive directive{text, start_line};
    // Normalize interior whitespace for matching: "#  pragma   once" -> tokens.
    std::vector<std::string> words;
    std::string word;
    for (const char c : text) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!word.empty()) {
          words.push_back(word);
          word.clear();
        }
      } else {
        word.push_back(c);
      }
    }
    if (!word.empty()) {
      words.push_back(word);
    }
    // '#' may be fused with the keyword ("#pragma") or stand alone ("# pragma").
    if (!words.empty() && words[0] == "#") {
      words.erase(words.begin());
    } else if (!words.empty() && words[0].size() > 1 && words[0][0] == '#') {
      words[0].erase(words[0].begin());
    }
    if (words.size() >= 2 && words[0] == "pragma" && words[1] == "once") {
      file_.has_pragma_once = true;
    }
    if (!words.empty() && words[0] == "include") {
      const size_t q1 = text.find('"');
      if (q1 != std::string::npos) {
        const size_t q2 = text.find('"', q1 + 1);
        if (q2 != std::string::npos) {
          file_.includes.push_back(IncludeRef{text.substr(q1 + 1, q2 - q1 - 1), start_line});
        }
      }
    }
    file_.directives.push_back(std::move(directive));
  }

  void QuotedLiteral(char quote) {
    ++pos_;  // opening quote
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '\n') {  // unterminated; bail at EOL
        return;
      }
      ++pos_;
      if (c == quote) {
        return;
      }
    }
  }

  void RawString() {
    // R"delim( ... )delim"  — pos_ sits on the opening '"'.
    ++pos_;
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') {
      delim.push_back(src_[pos_]);
      ++pos_;
    }
    const std::string closer = ")" + delim + "\"";
    const size_t end = src_.find(closer, pos_);
    size_t stop = end == std::string::npos ? src_.size() : end + closer.size();
    for (size_t i = pos_; i < stop && i < src_.size(); ++i) {
      if (src_[i] == '\n') {
        ++line_;
      }
    }
    pos_ = stop;
  }

  void Identifier() {
    const size_t start = pos_;
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) {
      ++pos_;
    }
    std::string text = src_.substr(start, pos_ - start);
    // Raw-string prefixes: R"...", u8R"...", LR"...", etc.
    if (pos_ < src_.size() && src_[pos_] == '"') {
      if (text == "R" || text == "u8R" || text == "uR" || text == "UR" || text == "LR") {
        RawString();
        return;
      }
      // Ordinary encoding prefix (u8"...", L"..."): skip the literal.
      QuotedLiteral('"');
      return;
    }
    if (pos_ < src_.size() && src_[pos_] == '\'' &&
        (text == "u8" || text == "u" || text == "U" || text == "L")) {
      QuotedLiteral('\'');
      return;
    }
    Emit(TokenKind::kIdentifier, std::move(text));
  }

  void Number() {
    const size_t start = pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (IsIdentChar(c) || c == '.') {
        ++pos_;
        continue;
      }
      // Exponent signs glue onto pp-numbers: 1e+9, 0x1p-3.
      if ((c == '+' || c == '-') && pos_ > start) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    Emit(TokenKind::kNumber, src_.substr(start, pos_ - start));
  }

  const std::string& src_;
  LexedFile file_;
  size_t pos_ = 0;
  int line_ = 1;
  std::set<int> lines_with_code_;
};

}  // namespace

LexedFile Lex(const std::string& path, const std::string& content) {
  return Lexer(path, content).Run();
}

bool IsSuppressed(const LexedFile& file, int line, const std::string& rule) {
  for (const int candidate : {line, line - 1}) {
    const auto it = file.suppressions.find(candidate);
    if (it == file.suppressions.end()) {
      continue;
    }
    const Suppression& sup = it->second;
    if (candidate == line - 1 && !sup.comment_only_line) {
      continue;  // an annotation sharing a code line covers only that line
    }
    if (sup.rules.count(rule) != 0 && sup.has_reason) {
      return true;
    }
  }
  return false;
}

}  // namespace detlint
