// Shared token-stream cursor for detlint's rule and symbol passes.
//
// Extracted from rules.cc when the analyzer grew its cross-TU layer (graph.cc,
// symbols.cc): every pass walks the same lexed token stream with the same
// bounds-checked primitives, so they live here once. This is still not a
// parser — callers match token sequences and balance brackets, nothing more.

#pragma once

#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "tools/detlint/lexer.h"

namespace detlint {

inline bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

inline bool IsHeaderPath(const std::string& path) { return EndsWith(path, ".h"); }

// True for C++ keywords that can directly precede a `(` without being a
// function name (control flow, casts, operators-as-words). Used by the
// function-boundary parser to avoid reading `if (` as a declaration of `if`.
inline bool IsCppKeyword(const std::string& text) {
  static const std::set<std::string> kKeywords = {
      "alignas",   "alignof",  "and",      "assert",   "case",        "catch",
      "co_await",  "co_return","co_yield", "const",    "constexpr",   "const_cast",
      "decltype",  "default",  "delete",   "do",       "dynamic_cast","else",
      "explicit",  "for",      "if",       "new",      "noexcept",    "not",
      "operator",  "or",       "requires", "return",   "sizeof",      "static_assert",
      "static_cast","switch",  "throw",    "try",      "typeid",      "while",
      "reinterpret_cast"};
  return kKeywords.count(text) != 0;
}

// Token-stream cursor helpers. All bounds-checked; out-of-range reads return a
// sentinel token that matches nothing.
class Tokens {
 public:
  explicit Tokens(const std::vector<Token>& tokens) : tokens_(tokens) {}

  size_t size() const { return tokens_.size(); }

  const Token& At(size_t i) const {
    static const Token kNone{TokenKind::kPunct, "", 0};
    return i < tokens_.size() ? tokens_[i] : kNone;
  }

  bool IsId(size_t i, const char* text) const {
    const Token& t = At(i);
    return t.kind == TokenKind::kIdentifier && t.text == text;
  }

  bool IsAnyId(size_t i) const { return At(i).kind == TokenKind::kIdentifier; }

  bool IsPunct(size_t i, char c) const {
    const Token& t = At(i);
    return t.kind == TokenKind::kPunct && t.text.size() == 1 && t.text[0] == c;
  }

  // `std :: <name>` starting at i; returns index of <name> or npos.
  size_t MatchStdQualified(size_t i, const char* name) const {
    if (IsId(i, "std") && IsPunct(i + 1, ':') && IsPunct(i + 2, ':') && IsId(i + 3, name)) {
      return i + 3;
    }
    return kNpos;
  }

  // True when token i is preceded by `.` or `->` (member access).
  bool IsMemberAccess(size_t i) const {
    if (i == 0) {
      return false;
    }
    if (IsPunct(i - 1, '.')) {
      return true;
    }
    return i >= 2 && IsPunct(i - 1, '>') && IsPunct(i - 2, '-');
  }

  // True when token i is preceded by `::` (qualified name).
  bool IsScopeQualified(size_t i) const {
    return i >= 2 && IsPunct(i - 1, ':') && IsPunct(i - 2, ':');
  }

  // Given the index of an opening bracket, returns the index of its matching
  // closer, treating `open`/`close` as the only bracket pair. npos on overflow.
  size_t MatchBalanced(size_t open_index, char open, char close) const {
    int depth = 0;
    for (size_t i = open_index; i < tokens_.size(); ++i) {
      if (IsPunct(i, open)) {
        ++depth;
      } else if (IsPunct(i, close)) {
        if (--depth == 0) {
          return i;
        }
      }
    }
    return kNpos;
  }

  static constexpr size_t kNpos = static_cast<size_t>(-1);

 private:
  const std::vector<Token>& tokens_;
};

}  // namespace detlint
