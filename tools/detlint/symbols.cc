#include "tools/detlint/symbols.h"

#include <algorithm>
#include <cctype>

#include "tools/detlint/tokens.h"

namespace detlint {
namespace {

// Scope kinds the boundary scanner distinguishes. Function bodies and
// brace initializers are not scopes — they are skipped wholesale, because
// nothing inside them declares a symbol this layer cares about.
struct Scope {
  size_t close;            // token index of the scope's closing '}'
  std::string class_name;  // non-empty inside a class/struct/union body
};

// After a parameter list's ')', scans the declarator tail (const, noexcept(...),
// override, trailing return type) and classifies what follows.
enum class Tail {
  kDefinition,   // '{' — a body follows
  kDeclaration,  // ';' or '= 0;'
  kStructural,   // '= default' / '= delete' — name is a decl site, not a symbol
  kCtorInit,     // ':' — constructor member-init list, then a body
  kNotAFunction, // ',' / ')' / initializer — a variable or an expression
};

Tail ClassifyTail(const Tokens& t, size_t after_params, size_t* body_open) {
  size_t i = after_params;
  while (i < t.size()) {
    if (t.IsPunct(i, '{')) {
      *body_open = i;
      return Tail::kDefinition;
    }
    if (t.IsPunct(i, ';')) {
      return Tail::kDeclaration;
    }
    if (t.IsPunct(i, ':')) {
      // Distinguish ctor-init ':' from '::' in a trailing return type.
      if (t.IsPunct(i + 1, ':') || (i > after_params && t.IsPunct(i - 1, ':'))) {
        i += 1;
        continue;
      }
      return Tail::kCtorInit;
    }
    if (t.IsPunct(i, '=')) {
      if (t.IsId(i + 1, "default") || t.IsId(i + 1, "delete")) {
        return Tail::kStructural;
      }
      if (t.At(i + 1).kind == TokenKind::kNumber) {
        return Tail::kDeclaration;  // pure virtual '= 0;'
      }
      return Tail::kNotAFunction;  // an initializer: this was a variable
    }
    if (t.IsPunct(i, '(')) {  // noexcept(...) / attribute-ish
      const size_t close = t.MatchBalanced(i, '(', ')');
      if (close == Tokens::kNpos) {
        return Tail::kNotAFunction;
      }
      i = close + 1;
      continue;
    }
    if (t.IsAnyId(i) || t.IsPunct(i, '-') || t.IsPunct(i, '>') || t.IsPunct(i, '&') ||
        t.IsPunct(i, '*') || t.IsPunct(i, '<')) {
      i += 1;  // const / noexcept / override / trailing return type tokens
      continue;
    }
    return Tail::kNotAFunction;  // ',' (declarator list), ')' (expression), ...
  }
  return Tail::kNotAFunction;
}

// From a ctor-init ':' scans forward to the body '{' at top level (member
// initializers may contain parenthesized and braced expressions).
size_t FindCtorBody(const Tokens& t, size_t colon) {
  int paren = 0;
  for (size_t i = colon; i < t.size(); ++i) {
    if (t.IsPunct(i, '(')) {
      ++paren;
    } else if (t.IsPunct(i, ')')) {
      --paren;
    } else if (t.IsPunct(i, '{') && paren == 0) {
      // A braced member initializer `member{...}` is preceded by an identifier
      // or '>'; the body brace is preceded by ')' or '}' (end of the last
      // initializer) — close enough: treat a '{' after ')' '}' or identifier
      // ambiguously and rely on balanced skipping either way.
      const size_t close = t.MatchBalanced(i, '{', '}');
      if (close == Tokens::kNpos) {
        return Tokens::kNpos;
      }
      // If the next non-'}' token continues the init list (','), keep going.
      if (t.IsPunct(close + 1, ',')) {
        i = close;
        continue;
      }
      return i;
    }
  }
  return Tokens::kNpos;
}

// True when the token before a candidate name can start a declaration: a type
// tail (identifier, '>', '*', '&', '::') or the start of the file/scope.
bool PrecededByType(const Tokens& t, size_t name_index) {
  if (name_index == 0) {
    return false;  // a bare call at the top of a file is not a declaration
  }
  const Token& prev = t.At(name_index - 1);
  if (prev.kind == TokenKind::kIdentifier) {
    return !IsCppKeyword(prev.text) || prev.text == "const" || prev.text == "constexpr" ||
           prev.text == "noexcept";
  }
  return t.IsPunct(name_index - 1, '>') || t.IsPunct(name_index - 1, '*') ||
         t.IsPunct(name_index - 1, '&');
}

// Heuristic: a parameter list that opens with a number or a string-ish token is
// an expression (`bar(3)` is a variable initializer, not a declaration).
bool ParamsLookLikeExpression(const Tokens& t, size_t open) {
  const Token& first = t.At(open + 1);
  return first.kind == TokenKind::kNumber;
}

}  // namespace

FileSymbols ParseFunctions(const LexedFile& file) {
  FileSymbols out;
  const Tokens t(file.tokens);
  std::vector<Scope> scopes;
  size_t i = 0;
  auto current_class = [&]() -> const std::string& {
    static const std::string kNone;
    return scopes.empty() ? kNone : scopes.back().class_name;
  };
  while (i < t.size()) {
    while (!scopes.empty() && i >= scopes.back().close) {
      scopes.pop_back();
    }
    // template <...> — skip the parameter list; the declaration follows.
    if (t.IsId(i, "template") && t.IsPunct(i + 1, '<')) {
      const size_t close = t.MatchBalanced(i + 1, '<', '>');
      i = close == Tokens::kNpos ? i + 2 : close + 1;
      continue;
    }
    if (t.IsId(i, "namespace")) {
      size_t j = i + 1;
      while (j < t.size() && !t.IsPunct(j, '{') && !t.IsPunct(j, ';') && !t.IsPunct(j, '=')) {
        ++j;
      }
      if (t.IsPunct(j, '{')) {
        const size_t close = t.MatchBalanced(j, '{', '}');
        if (close != Tokens::kNpos) {
          scopes.push_back(Scope{close, current_class()});  // transparent to class
        }
      }
      i = j + 1;
      continue;
    }
    if (t.IsId(i, "enum")) {  // enum [class|struct] Name [: type] { ... };
      size_t j = i + 1;
      while (j < t.size() && !t.IsPunct(j, '{') && !t.IsPunct(j, ';')) {
        ++j;
      }
      if (t.IsPunct(j, '{')) {
        const size_t close = t.MatchBalanced(j, '{', '}');
        i = close == Tokens::kNpos ? j + 1 : close + 1;
      } else {
        i = j + 1;
      }
      continue;
    }
    if (t.IsId(i, "class") || t.IsId(i, "struct") || t.IsId(i, "union")) {
      std::string name;
      size_t j = i + 1;
      int angle = 0;
      while (j < t.size() && !t.IsPunct(j, ';') &&
             !(angle == 0 && (t.IsPunct(j, '{') || t.IsPunct(j, '(')))) {
        if (t.IsPunct(j, '<')) {
          ++angle;
        } else if (t.IsPunct(j, '>')) {
          --angle;
        } else if (angle == 0 && t.IsAnyId(j) && name.empty()) {
          name = t.At(j).text;  // first identifier is the class name
        } else if (angle == 0 && t.IsPunct(j, ':') && !t.IsPunct(j + 1, ':') &&
                   !t.IsPunct(j - 1, ':')) {
          // base clause — the name (if any) is already captured
        }
        ++j;
      }
      if (t.IsPunct(j, '{')) {
        const size_t close = t.MatchBalanced(j, '{', '}');
        if (close != Tokens::kNpos) {
          scopes.push_back(Scope{close, name});
          i = j + 1;
          continue;
        }
      }
      i = j + 1;
      continue;
    }
    // Candidate: identifier followed by '('.
    if (t.IsAnyId(i) && t.IsPunct(i + 1, '(') && !IsCppKeyword(t.At(i).text) &&
        !t.IsMemberAccess(i)) {
      const std::string& name = t.At(i).text;
      const bool qualified = t.IsScopeQualified(i);
      const bool is_dtor = i > 0 && t.IsPunct(i - 1, '~');
      std::string qualifier = current_class();
      if (qualified && i >= 3 && t.IsAnyId(i - 3)) {
        qualifier = t.At(i - 3).text;
      }
      const bool is_ctor = !qualifier.empty() && name == qualifier;
      const size_t params_close = t.MatchBalanced(i + 1, '(', ')');
      if (params_close == Tokens::kNpos) {
        ++i;
        continue;
      }
      size_t body_open = Tokens::kNpos;
      Tail tail = ClassifyTail(t, params_close + 1, &body_open);
      if (tail == Tail::kCtorInit) {
        body_open = FindCtorBody(t, params_close + 1);
        tail = body_open == Tokens::kNpos ? Tail::kNotAFunction : Tail::kDefinition;
      }
      // Unqualified candidates need a type before the name to be declarations;
      // qualified ones (`Class::name`) only count when a body follows.
      const bool plausible =
          !ParamsLookLikeExpression(t, i + 1) &&
          ((qualified && tail == Tail::kDefinition) ||
           (!qualified && !is_dtor && PrecededByType(t, i)) || is_dtor || is_ctor);
      if (plausible && tail != Tail::kNotAFunction) {
        out.decl_name_indexes.insert(i);
        if (!is_ctor && !is_dtor && tail != Tail::kStructural && name != "main") {
          FunctionSym sym;
          sym.name = name;
          sym.qualifier = qualifier;
          sym.line = t.At(i).line;
          sym.name_index = i;
          sym.is_definition = tail == Tail::kDefinition;
          out.functions.push_back(sym);
        }
        if (tail == Tail::kDefinition && body_open != Tokens::kNpos) {
          const size_t body_close = t.MatchBalanced(body_open, '{', '}');
          i = body_close == Tokens::kNpos ? body_open + 1 : body_close + 1;
          continue;
        }
        i = params_close + 1;
        continue;
      }
    }
    ++i;
  }
  return out;
}

std::set<std::string> NonConstMethods(const LexedFile& file,
                                      const std::string& class_name) {
  std::set<std::string> methods;
  const Tokens t(file.tokens);
  for (size_t i = 0; i + 2 < t.size(); ++i) {
    if (!(t.IsId(i, "class") || t.IsId(i, "struct"))) {
      continue;
    }
    if (!t.IsId(i + 1, class_name.c_str())) {
      continue;
    }
    // Find the body '{' (skipping a base clause); stop at ';' (forward decl).
    size_t open = i + 2;
    while (open < t.size() && !t.IsPunct(open, '{') && !t.IsPunct(open, ';')) {
      ++open;
    }
    if (!t.IsPunct(open, '{')) {
      continue;
    }
    const size_t close = t.MatchBalanced(open, '{', '}');
    if (close == Tokens::kNpos) {
      continue;
    }
    // Walk the body at depth 1: method bodies, nested classes, and brace
    // initializers are all skipped with one balanced jump.
    size_t j = open + 1;
    while (j < close) {
      if (t.IsPunct(j, '{')) {
        const size_t sub = t.MatchBalanced(j, '{', '}');
        j = sub == Tokens::kNpos ? j + 1 : sub + 1;
        continue;
      }
      if (t.IsAnyId(j) && t.IsPunct(j + 1, '(') && !IsCppKeyword(t.At(j).text) &&
          !t.IsMemberAccess(j) && !t.IsPunct(j - 1, '~') &&
          t.At(j).text != class_name) {
        const size_t params_close = t.MatchBalanced(j + 1, '(', ')');
        if (params_close != Tokens::kNpos && params_close < close) {
          size_t body_open = Tokens::kNpos;
          const Tail tail = ClassifyTail(t, params_close + 1, &body_open);
          if ((tail == Tail::kDefinition || tail == Tail::kDeclaration) &&
              PrecededByType(t, j) && !t.IsId(params_close + 1, "const")) {
            methods.insert(t.At(j).text);
          }
          j = params_close + 1;
          continue;
        }
      }
      ++j;
    }
    i = close;
  }
  return methods;
}

std::vector<Finding> CheckObservationalPurity(
    const std::map<std::string, LexedFile>& files, const Config& config) {
  std::vector<Finding> findings;
  const std::vector<std::string>& classes = config.PurityClasses();
  if (classes.empty()) {
    return findings;
  }
  const RuleInfo& rule = RuleById("DL012");
  // Union the mutator sets of every watched class across all analyzed files.
  std::map<std::string, std::string> mutator_of;  // method -> watched class
  for (const auto& [path, file] : files) {
    for (const std::string& cls : classes) {
      for (const std::string& method : NonConstMethods(file, cls)) {
        mutator_of.emplace(method, cls);
      }
    }
  }
  if (mutator_of.empty()) {
    return findings;
  }
  std::set<std::string> class_set(classes.begin(), classes.end());
  for (const auto& [path, file] : files) {
    if (!config.IsPathInRuleSet(rule.name, path)) {
      continue;
    }
    const Tokens t(file.tokens);
    for (size_t i = 0; i < t.size(); ++i) {
      if (!t.IsAnyId(i) || !t.IsPunct(i + 1, '(')) {
        continue;
      }
      const auto it = mutator_of.find(t.At(i).text);
      if (it == mutator_of.end()) {
        continue;
      }
      const bool member_call = t.IsMemberAccess(i);
      // `Class::method(...)` only counts when the qualifier IS a watched class
      // (so `std::min(...)` can never collide).
      const bool qualified_call = t.IsScopeQualified(i) && i >= 3 && t.IsAnyId(i - 3) &&
                                  class_set.count(t.At(i - 3).text) != 0;
      if (!member_call && !qualified_call) {
        continue;
      }
      ReportUnlessSuppressed(file, rule, t.At(i).line,
                             "call to non-const " + it->second + "::" + t.At(i).text +
                                 "() from observer-side code",
                             config, &findings);
    }
  }
  return findings;
}

std::vector<Finding> CheckDeadSymbols(const std::map<std::string, LexedFile>& files,
                                      const Config& config) {
  std::vector<Finding> findings;
  const RuleInfo& rule = RuleById("DL013");
  // Inactive without a declared paths set (keeps fixture batches pinned).
  bool active = false;
  for (const auto& [path, file] : files) {
    if (IsHeaderPath(path) && config.IsPathInRuleSet(rule.name, path)) {
      active = true;
      break;
    }
  }
  if (!active) {
    return findings;
  }
  std::map<std::string, FileSymbols> symbols;
  for (const auto& [path, file] : files) {
    symbols.emplace(path, ParseFunctions(file));
  }
  // Candidates: functions declared in headers inside the rule's path set.
  // first declaration site wins (deterministic: files map is ordered).
  std::map<std::string, std::pair<std::string, int>> candidates;
  for (const auto& [path, file] : files) {
    if (!IsHeaderPath(path) || !config.IsPathInRuleSet(rule.name, path)) {
      continue;
    }
    for (const FunctionSym& sym : symbols.at(path).functions) {
      candidates.emplace(sym.name, std::make_pair(path, sym.line));
    }
  }
  // References: any occurrence of the name that is not a declaration/definition
  // name token, in any analyzed file — plus identifiers inside #define bodies
  // (a macro-expanded call is a use the token stream never sees).
  std::set<std::string> referenced;
  for (const auto& [path, file] : files) {
    const FileSymbols& syms = symbols.at(path);
    for (size_t i = 0; i < file.tokens.size(); ++i) {
      const Token& tok = file.tokens[i];
      if (tok.kind != TokenKind::kIdentifier) {
        continue;
      }
      if (syms.decl_name_indexes.count(i) != 0) {
        continue;
      }
      if (candidates.count(tok.text) != 0) {
        referenced.insert(tok.text);
      }
    }
    for (const Directive& d : file.directives) {
      if (d.text.find("define") == std::string::npos) {
        continue;
      }
      std::string word;
      for (const char c : d.text + " ") {
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
          word.push_back(c);
        } else {
          if (candidates.count(word) != 0) {
            referenced.insert(word);
          }
          word.clear();
        }
      }
    }
  }
  for (const auto& [name, site] : candidates) {
    if (referenced.count(name) != 0) {
      continue;
    }
    const LexedFile& file = files.at(site.first);
    ReportUnlessSuppressed(file, rule, site.second,
                           "function '" + name + "' is declared here but referenced by no TU",
                           config, &findings);
  }
  return findings;
}

}  // namespace detlint
