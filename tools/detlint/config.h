// detlint configuration: a TOML-subset just big enough for per-rule allowlists.
//
// Grammar accepted (anything else is a parse error, reported with a line number):
//
//   # comment
//   [rule.<rule-name>]
//   allow = ["path/prefix", "dir/"]     # path allowlist for this rule
//   rng_tokens = ["Rng", "rng"]         # unseeded-shuffle: tokens that count as
//                                       # a seeded project RNG argument
//
// Paths are repo-root-relative, '/'-separated. An entry ending in '/' allowlists
// the whole directory subtree; otherwise the match is exact. Keeping the policy
// in a checked-in file (tools/detlint/detlint.toml) rather than in the analyzer
// means allowlisting bench wall-timing is a reviewed one-line diff, not a
// rebuild.

#pragma once

#include <map>
#include <string>
#include <vector>

namespace detlint {

struct RuleConfig {
  std::vector<std::string> allow;       // path allowlist
  std::vector<std::string> rng_tokens;  // unseeded-shuffle only
};

class Config {
 public:
  // Parses config text. On error returns false and sets *error to
  // "line N: what".
  bool Parse(const std::string& text, std::string* error);

  // Loads and parses a file; missing file is an error.
  bool Load(const std::string& path, std::string* error);

  // True when `rel_path` is allowlisted for `rule`.
  bool IsPathAllowed(const std::string& rule, const std::string& rel_path) const;

  // unseeded-shuffle RNG marker tokens; defaults to {"Rng", "rng"} when the
  // config does not override them.
  const std::vector<std::string>& RngTokens() const;

  const std::map<std::string, RuleConfig>& rules() const { return rules_; }

 private:
  std::map<std::string, RuleConfig> rules_;
  std::vector<std::string> default_rng_tokens_ = {"Rng", "rng"};
};

}  // namespace detlint
