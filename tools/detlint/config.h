// detlint configuration: a TOML-subset just big enough for per-rule policy.
//
// Grammar accepted (anything else is a parse error, reported with a line number):
//
//   # comment
//   [rule.<rule-name>]
//   allow = ["path/prefix", "dir/"]     # path allowlist for this rule
//   rng_tokens = ["Rng", "rng"]         # unseeded-shuffle: tokens that count as
//                                       # a seeded project RNG argument
//   layers = ["common", "mem topology"] # subsystem-layering: the layer DAG,
//                                       # lowest first; one entry per rank,
//                                       # space-separated src/ subdirs per rank
//   paths = ["src/vm/", "src/x.h"]      # hot-path-alloc / observational-purity /
//                                       # dead-symbol: the path set the rule
//                                       # applies to (empty = rule inactive)
//   classes = ["Machine"]               # observational-purity: watched classes
//
//   [scan]
//   exclude = ["tools/detlint/fixtures/"]  # never collect these paths
//
// Arrays may span lines: a value whose `[` has no closing `]` on the same line
// continues on following lines until the `]`. Paths are repo-root-relative,
// '/'-separated. An entry ending in '/' matches the whole directory subtree;
// otherwise the match is exact. Keeping the policy in a checked-in file
// (tools/detlint/detlint.toml) rather than in the analyzer means allowlisting
// bench wall-timing — or re-ranking a subsystem — is a reviewed one-line diff,
// not a rebuild.

#pragma once

#include <map>
#include <string>
#include <vector>

namespace detlint {

struct RuleConfig {
  std::vector<std::string> allow;       // path allowlist
  std::vector<std::string> rng_tokens;  // unseeded-shuffle only
  std::vector<std::string> layers;      // subsystem-layering only
  std::vector<std::string> paths;       // path set for path-scoped rules
  std::vector<std::string> classes;     // observational-purity only
};

class Config {
 public:
  // Parses config text. On error returns false and sets *error to
  // "line N: what".
  bool Parse(const std::string& text, std::string* error);

  // Loads and parses a file; missing file is an error.
  bool Load(const std::string& path, std::string* error);

  // True when `rel_path` is allowlisted for `rule`.
  bool IsPathAllowed(const std::string& rule, const std::string& rel_path) const;

  // True when `rel_path` falls inside `rule`'s declared `paths` set. Rules
  // scoped this way (hot-path-alloc, observational-purity, dead-symbol) are
  // inactive when the set is empty.
  bool IsPathInRuleSet(const std::string& rule, const std::string& rel_path) const;

  // unseeded-shuffle RNG marker tokens; defaults to {"Rng", "rng"} when the
  // config does not override them.
  const std::vector<std::string>& RngTokens() const;

  // subsystem-layering layer DAG, lowest rank first; empty = rule inactive.
  const std::vector<std::string>& Layers() const;

  // observational-purity watched class names; empty = rule inactive.
  const std::vector<std::string>& PurityClasses() const;

  // [scan] exclude prefixes (same matching as allowlists).
  const std::vector<std::string>& ScanExcludes() const { return scan_exclude_; }

  const std::map<std::string, RuleConfig>& rules() const { return rules_; }

 private:
  std::map<std::string, RuleConfig> rules_;
  std::vector<std::string> scan_exclude_;
  std::vector<std::string> default_rng_tokens_ = {"Rng", "rng"};
  std::vector<std::string> empty_;
};

}  // namespace detlint
