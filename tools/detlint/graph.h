// detlint include-graph layer: the quoted-#include DAG over the analyzed file
// set, and the DL010 subsystem-layering pass built on it.
//
// The layer DAG is declared in detlint.toml ([rule.subsystem-layering],
// `layers`, lowest rank first; one entry per rank, space-separated src/
// subdirectories per rank). Three finding shapes, all under DL010:
//   * back-edge: a file in a lower-ranked subsystem includes a header from a
//     higher-ranked one (same rank is allowed — mem and topology are mutually
//     aware by design and share a rank);
//   * cycle: the quoted-include graph contains a cycle (reported once, at the
//     closing edge of the lexicographically smallest file on the cycle);
//   * unranked subsystem: a src/<dir>/ file whose <dir> appears in no layer —
//     new subsystems must be ranked before they can land.
//
// Edges into files outside the analyzed set (system headers, generated code)
// are ignored; bench/tests/examples/tools are unranked on purpose and may
// include anything.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "tools/detlint/config.h"
#include "tools/detlint/lexer.h"
#include "tools/detlint/rules.h"

namespace detlint {

// The include graph over analyzed files: adjacency by repo-relative path,
// restricted to quoted includes that resolve inside the analyzed set.
class IncludeGraph {
 public:
  explicit IncludeGraph(const std::map<std::string, LexedFile>& files);

  // Out-edges of `path` (include targets inside the analyzed set), with the
  // line of the #include directive.
  const std::vector<IncludeRef>& Edges(const std::string& path) const;

  // Every cycle in the graph, each as the list of files on it (rotated so the
  // lexicographically smallest file is first). Deterministic order.
  std::vector<std::vector<std::string>> FindCycles() const;

 private:
  std::map<std::string, std::vector<IncludeRef>> edges_;
};

// DL010: layering back-edges, include cycles, unranked src/ subsystems.
std::vector<Finding> CheckLayering(const std::map<std::string, LexedFile>& files,
                                   const Config& config);

}  // namespace detlint
