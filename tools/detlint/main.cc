// detlint CLI.
//
//   detlint [--config <file>] [--format=text|json] [--root <dir>] <paths...>
//   detlint --list-rules
//
// Paths are files or directories relative to --root (default: the current
// directory); directories are walked recursively for *.h / *.cc in sorted
// order. Exit status: 0 clean (warn-tier findings allowed), 1 error-tier
// findings, 2 usage/IO/config error — including any DL000 io-error finding —
// so a CI wrapper can distinguish "the tree is dirty" from "the lint itself
// broke".

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "tools/detlint/config.h"
#include "tools/detlint/rules.h"

namespace detlint {
namespace {

const char* TierName(Severity severity) {
  return severity == Severity::kError ? "error" : "warn";
}

int Usage(std::ostream& out, int status) {
  out << "usage: detlint [--config <file>] [--format=text|json] [--root <dir>] "
         "<paths...>\n"
         "       detlint --list-rules\n"
         "  Scans *.h / *.cc under each path for determinism & invariant\n"
         "  violations. Rules, IDs, and suppression syntax: DESIGN.md section 7.\n";
  return status;
}

// Emits the rule registry as the same markdown table DESIGN.md §7 carries; a
// ctest diffs the two so the docs cannot drift from the analyzer.
int ListRules() {
  std::cout << "| ID | Name | Tier | Hint |\n";
  std::cout << "|----|------|------|------|\n";
  for (const RuleInfo& rule : AllRules()) {
    std::cout << "| " << rule.id << " | " << rule.name << " | "
              << TierName(rule.severity) << " | " << rule.hint << " |\n";
  }
  return 0;
}

void PrintText(const std::vector<Finding>& findings, size_t files_scanned,
               size_t errors, size_t warnings) {
  for (const Finding& f : findings) {
    const char* tier = f.rule->severity == Severity::kError ? "error" : "warning";
    std::cout << f.file << ":" << f.line << ": " << tier << ": [" << f.rule->id << " "
              << f.rule->name << "] " << f.message << "\n    hint: " << f.rule->hint
              << "\n";
  }
  std::cout << "detlint: " << errors << " error(s), " << warnings << " warning(s) in "
            << files_scanned << " file(s)\n";
}

void PrintJson(const std::vector<Finding>& findings, size_t files_scanned,
               size_t errors, size_t warnings) {
  chronotier::JsonWriter w(std::cout);
  w.set_pretty(true);
  w.BeginObject();
  w.Field("files_scanned", static_cast<uint64_t>(files_scanned));
  w.Field("findings_count", static_cast<uint64_t>(findings.size()));
  w.Field("errors_count", static_cast<uint64_t>(errors));
  w.Field("warnings_count", static_cast<uint64_t>(warnings));
  w.Key("findings");
  w.BeginArray();
  for (const Finding& f : findings) {
    w.BeginObject();
    w.Field("file", f.file);
    w.Field("line", static_cast<int64_t>(f.line));
    w.Field("id", f.rule->id);
    w.Field("rule", f.rule->name);
    w.Field("severity", TierName(f.rule->severity));
    w.Field("message", f.message);
    w.Field("hint", f.rule->hint);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  std::cout << "\n";
}

int Main(int argc, char** argv) {
  std::string config_path;
  std::string format = "text";
  std::string root = ".";
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return Usage(std::cout, 0);
    }
    if (arg == "--list-rules") {
      return ListRules();
    }
    if (arg == "--config") {
      if (++i >= argc) {
        return Usage(std::cerr, 2);
      }
      config_path = argv[i];
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") {
        std::cerr << "detlint: unknown format '" << format << "'\n";
        return 2;
      }
    } else if (arg == "--root") {
      if (++i >= argc) {
        return Usage(std::cerr, 2);
      }
      root = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "detlint: unknown option '" << arg << "'\n";
      return Usage(std::cerr, 2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    return Usage(std::cerr, 2);
  }

  Config config;
  if (!config_path.empty()) {
    std::string error;
    if (!config.Load(config_path, &error)) {
      std::cerr << "detlint: config error: " << error << "\n";
      return 2;
    }
  }

  std::vector<std::string> files;
  std::string error;
  if (!CollectSourceFiles(root, paths, config, &files, &error)) {
    std::cerr << "detlint: " << error << "\n";
    return 2;
  }

  std::vector<Finding> findings = AnalyzeFiles(root, files, config);
  size_t errors = 0;
  size_t warnings = 0;
  bool io_error = false;
  for (const Finding& f : findings) {
    if (std::strcmp(f.rule->id, "DL000") == 0) {
      io_error = true;
    }
    if (f.rule->severity == Severity::kError) {
      ++errors;
    } else {
      ++warnings;
    }
  }
  if (format == "json") {
    PrintJson(findings, files.size(), errors, warnings);
  } else {
    PrintText(findings, files.size(), errors, warnings);
  }
  if (io_error) {
    return 2;  // the lint broke, not the tree
  }
  return errors == 0 ? 0 : 1;
}

}  // namespace
}  // namespace detlint

int main(int argc, char** argv) { return detlint::Main(argc, argv); }
