// detlint CLI.
//
//   detlint [--config <file>] [--format=text|json] [--root <dir>] <paths...>
//
// Paths are files or directories relative to --root (default: the current
// directory); directories are walked recursively for *.h / *.cc in sorted
// order. Exit status: 0 clean, 1 findings, 2 usage/IO/config error — so a CI
// wrapper can distinguish "the tree is dirty" from "the lint itself broke".

#include <iostream>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "tools/detlint/config.h"
#include "tools/detlint/rules.h"

namespace detlint {
namespace {

int Usage(std::ostream& out, int status) {
  out << "usage: detlint [--config <file>] [--format=text|json] [--root <dir>] "
         "<paths...>\n"
         "  Scans *.h / *.cc under each path for determinism & invariant\n"
         "  violations. Rules, IDs, and suppression syntax: DESIGN.md section 7.\n";
  return status;
}

void PrintText(const std::vector<Finding>& findings, size_t files_scanned) {
  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": error: [" << f.rule->id << " "
              << f.rule->name << "] " << f.message << "\n    hint: " << f.rule->hint
              << "\n";
  }
  std::cout << "detlint: " << findings.size() << " finding(s) in " << files_scanned
            << " file(s)\n";
}

void PrintJson(const std::vector<Finding>& findings, size_t files_scanned) {
  chronotier::JsonWriter w(std::cout);
  w.set_pretty(true);
  w.BeginObject();
  w.Field("files_scanned", static_cast<uint64_t>(files_scanned));
  w.Field("findings_count", static_cast<uint64_t>(findings.size()));
  w.Key("findings");
  w.BeginArray();
  for (const Finding& f : findings) {
    w.BeginObject();
    w.Field("file", f.file);
    w.Field("line", static_cast<int64_t>(f.line));
    w.Field("id", f.rule->id);
    w.Field("rule", f.rule->name);
    w.Field("message", f.message);
    w.Field("hint", f.rule->hint);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  std::cout << "\n";
}

int Main(int argc, char** argv) {
  std::string config_path;
  std::string format = "text";
  std::string root = ".";
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return Usage(std::cout, 0);
    }
    if (arg == "--config") {
      if (++i >= argc) {
        return Usage(std::cerr, 2);
      }
      config_path = argv[i];
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") {
        std::cerr << "detlint: unknown format '" << format << "'\n";
        return 2;
      }
    } else if (arg == "--root") {
      if (++i >= argc) {
        return Usage(std::cerr, 2);
      }
      root = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "detlint: unknown option '" << arg << "'\n";
      return Usage(std::cerr, 2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    return Usage(std::cerr, 2);
  }

  Config config;
  if (!config_path.empty()) {
    std::string error;
    if (!config.Load(config_path, &error)) {
      std::cerr << "detlint: config error: " << error << "\n";
      return 2;
    }
  }

  std::vector<std::string> files;
  std::string error;
  if (!CollectSourceFiles(root, paths, &files, &error)) {
    std::cerr << "detlint: " << error << "\n";
    return 2;
  }

  std::vector<Finding> findings = AnalyzeFiles(root, files, config);
  for (const Finding& f : findings) {
    if (f.rule == nullptr) {
      std::cerr << "detlint: " << f.file << ": " << f.message << "\n";
      return 2;
    }
  }
  if (format == "json") {
    PrintJson(findings, files.size());
  } else {
    PrintText(findings, files.size());
  }
  return findings.empty() ? 0 : 1;
}

}  // namespace
}  // namespace detlint

int main(int argc, char** argv) { return detlint::Main(argc, argv); }
