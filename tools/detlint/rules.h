// detlint rules: the project's determinism & safety invariants as token-level
// checks. See DESIGN.md §7 for the rule table and rationale.
//
//   DL000 io-error               a listed file could not be read (always exit 2)
//   DL001 wall-clock             ambient time/entropy source in simulated code
//   DL002 assert                 assert() vanishes under NDEBUG; use CHECK
//   DL003 unordered-iter         iteration over std::unordered_{map,set}
//   DL004 pointer-sort           sort comparator ordered by raw pointer value
//   DL005 unseeded-shuffle       std::shuffle/std::sample without project RNG
//   DL006 pragma-once            header missing #pragma once
//   DL007 using-namespace-header using namespace at header scope
//   DL008 naked-new              raw new/delete outside allowlisted files
//   DL009 std-function-hot-path  std::function in hot-path headers (src/vm, src/sim)
//   DL010 subsystem-layering     include back-edge against the declared layer DAG,
//                                include cycle, or src/ subsystem missing from the DAG
//   DL011 hot-path-alloc         allocation (new/make_unique/std::string/growing
//                                push_back) in a declared hot-path file
//   DL012 observational-purity   observer-side code calling a non-const mutator of a
//                                watched simulation class
//   DL013 dead-symbol            function declared in a src/ header, referenced by no
//                                TU (warn tier)
//
// DL010–DL013 are cross-TU: they need every analyzed file's tokens/includes at
// once and are activated by their detlint.toml sections (layers / paths /
// classes) — without config they are inert, so fixture runs stay pinned.
//
// Findings can be suppressed three ways, all reviewable in diffs:
//   * inline:  // detlint:allow(rule-name) justification   (same line)
//   * above:   a comment-only line directly before the finding
//   * config:  [rule.<name>] allow = [...] in tools/detlint/detlint.toml
// An annotation without a justification does not suppress.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "tools/detlint/config.h"
#include "tools/detlint/lexer.h"

namespace detlint {

// Warn-tier findings are reported but do not fail the build; a rule starts at
// kWarn while the tree is being brought to zero and is promoted once clean
// (DL013 is the only warn-tier rule today).
enum class Severity { kError, kWarn };

struct RuleInfo {
  const char* id;    // stable machine ID, e.g. "DL003"
  const char* name;  // kebab-case name used in suppressions/config
  Severity severity;
  const char* hint;  // one-line fix-it
};

// All rules, in ID order. Exposed for docs/tests.
const std::vector<RuleInfo>& AllRules();

// Registry lookup by stable ID ("DL010"); CHECK-fails on an unknown ID, so a
// cross-TU pass can never report under an unregistered rule.
const RuleInfo& RuleById(const char* id);

struct Finding {
  std::string file;  // repo-relative path
  int line = 0;
  const RuleInfo* rule = nullptr;
  std::string message;
};

// Findings are ordered by (file, line, rule ID) so output is deterministic.
// Every finding carries a non-null rule (IO failures use DL000).
bool FindingLess(const Finding& a, const Finding& b);

// Appends a finding for `rule` at `file`:`line` unless the line carries a
// justified inline suppression or the file is allowlisted for the rule.
// Shared by the per-file runner and the cross-TU passes so all four
// suppression paths behave identically everywhere.
void ReportUnlessSuppressed(const LexedFile& file, const RuleInfo& rule, int line,
                            std::string message, const Config& config,
                            std::vector<Finding>* out);

// Runs every per-file rule over one lexed file. `extra_unordered_names` seeds
// the unordered-iter rule with container names declared in the file's includes
// (members declared in a class header but iterated in its .cc).
std::vector<Finding> RunRules(const LexedFile& file, const Config& config,
                              const std::vector<std::string>& extra_unordered_names);

// Names of variables declared with std::unordered_map/std::unordered_set in
// `file` — harvested from headers to cross-seed RunRules on their .cc files.
std::vector<std::string> CollectUnorderedNames(const LexedFile& file);

// Collects *.h / *.cc files under each of `paths` (files or directories
// relative to `root`), '/'-separated, sorted, deduplicated, with any
// [scan] exclude prefixes from `config` dropped (fixture corpora live inside
// tools/ and must not be linted as production code). Returns false and sets
// *error on IO failure.
bool CollectSourceFiles(const std::string& root, const std::vector<std::string>& paths,
                        const Config& config, std::vector<std::string>* files,
                        std::string* error);

// Analyzes `rel_paths` (files, '/'-separated, relative to `root`). Reads each
// file, cross-seeds unordered container names along quoted #include edges, runs
// all per-file rules, then the cross-TU passes (include graph / layering,
// observational purity, dead symbols), and returns findings sorted by
// FindingLess. IO failures surface as DL000 findings on line 0.
std::vector<Finding> AnalyzeFiles(const std::string& root,
                                  const std::vector<std::string>& rel_paths,
                                  const Config& config);

}  // namespace detlint
