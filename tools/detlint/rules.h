// detlint rules: the project's determinism & safety invariants as token-level
// checks. See DESIGN.md §7 for the rule table and rationale.
//
//   DL001 wall-clock              ambient time/entropy source in simulated code
//   DL002 assert                  assert() vanishes under NDEBUG; use CHECK
//   DL003 unordered-iter          iteration over std::unordered_{map,set}
//   DL004 pointer-sort            sort comparator ordered by raw pointer value
//   DL005 unseeded-shuffle        std::shuffle/std::sample without project RNG
//   DL006 pragma-once             header missing #pragma once
//   DL007 using-namespace-header  using namespace at header scope
//   DL008 naked-new               raw new/delete outside allowlisted files
//   DL009 std-function-hot-path   std::function in hot-path headers (src/vm, src/sim)
//
// Findings can be suppressed three ways, all reviewable in diffs:
//   * inline:  // detlint:allow(rule-name) justification   (same line)
//   * above:   a comment-only line directly before the finding
//   * config:  [rule.<name>] allow = [...] in tools/detlint/detlint.toml
// An annotation without a justification does not suppress.

#pragma once

#include <string>
#include <vector>

#include "tools/detlint/config.h"
#include "tools/detlint/lexer.h"

namespace detlint {

struct RuleInfo {
  const char* id;    // stable machine ID, e.g. "DL003"
  const char* name;  // kebab-case name used in suppressions/config
  const char* hint;  // one-line fix-it
};

// All rules, in ID order. Exposed for docs/tests.
const std::vector<RuleInfo>& AllRules();

struct Finding {
  std::string file;  // repo-relative path
  int line = 0;
  const RuleInfo* rule = nullptr;
  std::string message;
};

// Findings are ordered by (file, line, rule ID) so output is deterministic.
bool FindingLess(const Finding& a, const Finding& b);

// Runs every rule over one lexed file. `extra_unordered_names` seeds the
// unordered-iter rule with container names declared in the file's includes
// (members declared in a class header but iterated in its .cc).
std::vector<Finding> RunRules(const LexedFile& file, const Config& config,
                              const std::vector<std::string>& extra_unordered_names);

// Names of variables declared with std::unordered_map/std::unordered_set in
// `file` — harvested from headers to cross-seed RunRules on their .cc files.
std::vector<std::string> CollectUnorderedNames(const LexedFile& file);

// Collects *.h / *.cc files under each of `paths` (files or directories
// relative to `root`), '/'-separated, sorted, deduplicated. Returns false and
// sets *error on IO failure.
bool CollectSourceFiles(const std::string& root, const std::vector<std::string>& paths,
                        std::vector<std::string>* files, std::string* error);

// Analyzes `rel_paths` (files, '/'-separated, relative to `root`). Reads each
// file, cross-seeds unordered container names along quoted #include edges, runs
// all rules, and returns findings sorted by FindingLess. IO failures surface as
// findings on line 0 with a null rule.
std::vector<Finding> AnalyzeFiles(const std::string& root,
                                  const std::vector<std::string>& rel_paths,
                                  const Config& config);

}  // namespace detlint
