#include "tools/detlint/graph.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace detlint {
namespace {

// `src/<dir>/...` -> `<dir>`; empty for anything else.
std::string SubsystemOf(const std::string& path) {
  const std::string kPrefix = "src/";
  if (path.compare(0, kPrefix.size(), kPrefix) != 0) {
    return "";
  }
  const size_t slash = path.find('/', kPrefix.size());
  if (slash == std::string::npos) {
    return "";  // a file directly under src/ belongs to no subsystem
  }
  return path.substr(kPrefix.size(), slash - kPrefix.size());
}

// Splits a layer entry ("mem topology") into subsystem names.
std::vector<std::string> SplitWords(const std::string& entry) {
  std::vector<std::string> words;
  std::istringstream in(entry);
  std::string word;
  while (in >> word) {
    words.push_back(word);
  }
  return words;
}

}  // namespace

IncludeGraph::IncludeGraph(const std::map<std::string, LexedFile>& files) {
  for (const auto& [path, file] : files) {
    std::vector<IncludeRef>& out = edges_[path];
    for (const IncludeRef& inc : file.includes) {
      if (files.count(inc.path) != 0) {
        out.push_back(inc);
      }
    }
  }
}

const std::vector<IncludeRef>& IncludeGraph::Edges(const std::string& path) const {
  static const std::vector<IncludeRef> kNone;
  const auto it = edges_.find(path);
  return it != edges_.end() ? it->second : kNone;
}

std::vector<std::vector<std::string>> IncludeGraph::FindCycles() const {
  // Iterative DFS with an explicit color map; a back-edge to a gray node closes
  // a cycle, recovered from the current DFS stack. Each cycle is canonicalized
  // (rotated to its smallest member) and deduplicated.
  std::vector<std::vector<std::string>> cycles;
  std::set<std::vector<std::string>> seen;
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  for (const auto& [start, unused] : edges_) {
    if (color[start] != 0) {
      continue;
    }
    // Stack of (node, next edge index); parallel path stack for cycle recovery.
    std::vector<std::pair<std::string, size_t>> stack{{start, 0}};
    color[start] = 1;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      const std::vector<IncludeRef>& out = Edges(node);
      if (next >= out.size()) {
        color[node] = 2;
        stack.pop_back();
        continue;
      }
      const std::string& target = out[next].path;
      ++next;
      if (color[target] == 1) {
        std::vector<std::string> cycle;
        bool in_cycle = false;
        for (const auto& [frame_node, unused2] : stack) {
          if (frame_node == target) {
            in_cycle = true;
          }
          if (in_cycle) {
            cycle.push_back(frame_node);
          }
        }
        const auto smallest = std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), smallest, cycle.end());
        if (seen.insert(cycle).second) {
          cycles.push_back(cycle);
        }
      } else if (color[target] == 0) {
        color[target] = 1;
        stack.emplace_back(target, 0);
      }
    }
  }
  std::sort(cycles.begin(), cycles.end());
  return cycles;
}

std::vector<Finding> CheckLayering(const std::map<std::string, LexedFile>& files,
                                   const Config& config) {
  std::vector<Finding> findings;
  const std::vector<std::string>& layers = config.Layers();
  if (layers.empty()) {
    return findings;
  }
  const RuleInfo& rule = RuleById("DL010");
  std::map<std::string, int> rank_of;
  for (size_t rank = 0; rank < layers.size(); ++rank) {
    for (const std::string& subsystem : SplitWords(layers[rank])) {
      rank_of[subsystem] = static_cast<int>(rank);
    }
  }
  const IncludeGraph graph(files);

  for (const auto& [path, file] : files) {
    const std::string subsystem = SubsystemOf(path);
    const auto from_rank = rank_of.find(subsystem);
    if (!subsystem.empty() && from_rank == rank_of.end()) {
      ReportUnlessSuppressed(file, rule, 1,
                             "subsystem 'src/" + subsystem +
                                 "' is not ranked in the layer DAG "
                                 "([rule.subsystem-layering] layers)",
                             config, &findings);
      continue;
    }
    if (subsystem.empty()) {
      continue;  // bench/tests/examples/tools are unranked by design
    }
    for (const IncludeRef& inc : graph.Edges(path)) {
      const std::string target_subsystem = SubsystemOf(inc.path);
      const auto to_rank = rank_of.find(target_subsystem);
      if (target_subsystem.empty() || to_rank == rank_of.end()) {
        continue;  // unranked target: either non-src or reported at its own file
      }
      if (to_rank->second > from_rank->second) {
        ReportUnlessSuppressed(
            file, rule, inc.line,
            "layering back-edge: src/" + subsystem + " (rank " +
                std::to_string(from_rank->second) + ") includes " + inc.path +
                " from src/" + target_subsystem + " (rank " +
                std::to_string(to_rank->second) + ")",
            config, &findings);
      }
    }
  }

  for (const std::vector<std::string>& cycle : graph.FindCycles()) {
    // Anchor the finding to the smallest file's edge into the cycle.
    const std::string& anchor = cycle.front();
    const std::string& target = cycle.size() > 1 ? cycle[1] : cycle.front();
    int line = 1;
    for (const IncludeRef& inc : graph.Edges(anchor)) {
      if (inc.path == target) {
        line = inc.line;
        break;
      }
    }
    std::string chain;
    for (const std::string& node : cycle) {
      chain += node + " -> ";
    }
    chain += cycle.front();
    ReportUnlessSuppressed(files.at(anchor), rule, line, "include cycle: " + chain,
                           config, &findings);
  }
  return findings;
}

}  // namespace detlint
