#!/usr/bin/env python3
"""Hard gate: compare a sim_throughput run against the checked-in baseline.

Three classes of check, in decreasing order of strictness:

1. sim_accesses per policy must match the baseline EXACTLY. The simulator is
   deterministic, so the number of simulated accesses is machine-independent; any
   drift means the simulation itself changed and the baseline must be regenerated
   deliberately (rerun sim_throughput and commit the new JSON with the change that
   moved it).
2. tlb_hit_rate per policy must stay within an absolute band (default +/-0.05).
   Hit rate is a property of the access stream and the fast-lane code, not the
   host, so it is nearly noise-free; a collapse to zero is how the Memtis
   fast-lane regression slipped through when this comparison was warn-only.
3. accesses_per_sec_tlb_on per policy must not drop more than --tolerance
   (default 50%) below baseline. Wall-clock on shared runners is noisy and the
   baseline was measured on different hardware, so the band is wide: it exists to
   catch order-of-magnitude hot-path regressions, not single-digit ones. Drops
   beyond --warn-below (default 10%) but inside the tolerance are reported as
   warnings in the output without failing.
4. runner.speedup (the --jobs N sweep wall-clock speedup over --jobs 1) is
   tracked warn-only: it depends on how many cores the runner actually grants,
   which CI cannot promise, so it never hard-fails. A drop of more than
   --runner-band (default 0.25, fractional) below baseline — e.g. the sweep no
   longer parallelising at all — is surfaced as a warning so the multicore
   baseline is visible on every run.

Exit status 0 = gate passed (warnings allowed), 1 = hard failure.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="BENCH_throughput.json from this run")
    parser.add_argument("baseline", help="checked-in baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.50,
                        help="max fractional acc/s drop vs baseline (default 0.50)")
    parser.add_argument("--warn-below", type=float, default=0.10,
                        help="fractional drop that triggers a warning (default 0.10)")
    parser.add_argument("--hit-rate-band", type=float, default=0.05,
                        help="max absolute tlb_hit_rate drift (default 0.05)")
    parser.add_argument("--runner-band", type=float, default=0.25,
                        help="warn when runner.speedup drops more than this "
                             "fraction below baseline (default 0.25; never fails)")
    args = parser.parse_args()

    cur = json.load(open(args.current))
    base = json.load(open(args.baseline))

    failures = []
    warnings = []
    rows = []

    cur_by_policy = {p["policy"]: p for p in cur["per_policy"]}
    for b in base["per_policy"]:
        name = b["policy"]
        c = cur_by_policy.get(name)
        if c is None:
            failures.append(f"{name}: missing from current run")
            continue

        if round(c["sim_accesses"]) != round(b["sim_accesses"]):
            failures.append(
                f"{name}: sim_accesses {c['sim_accesses']:.0f} != baseline "
                f"{b['sim_accesses']:.0f} (simulation changed; regenerate the "
                "baseline deliberately if intended)")

        drift = c["tlb_hit_rate"] - b["tlb_hit_rate"]
        if abs(drift) > args.hit_rate_band:
            failures.append(
                f"{name}: tlb_hit_rate {c['tlb_hit_rate']:.4f} drifted "
                f"{drift:+.4f} from baseline {b['tlb_hit_rate']:.4f} "
                f"(band +/-{args.hit_rate_band})")

        b_aps, c_aps = b["accesses_per_sec_tlb_on"], c["accesses_per_sec_tlb_on"]
        delta = (c_aps - b_aps) / b_aps
        if delta < -args.tolerance:
            failures.append(
                f"{name}: acc/s (TLB on) {c_aps:,.0f} is {delta:+.1%} vs baseline "
                f"{b_aps:,.0f} (tolerance -{args.tolerance:.0%})")
        elif delta < -args.warn_below:
            warnings.append(f"{name}: acc/s (TLB on) {delta:+.1%} vs baseline")
        rows.append((name, b_aps, c_aps, delta,
                     b["tlb_hit_rate"], c["tlb_hit_rate"]))

    extra = set(cur_by_policy) - {b["policy"] for b in base["per_policy"]}
    if extra:
        warnings.append(f"policies not in baseline (unchecked): {sorted(extra)}")

    # Warn-only multicore tracking: the runner speedup is a property of the host's
    # core grant as much as of the code, so it informs but never gates.
    cur_runner = cur.get("runner")
    base_runner = base.get("runner")
    if cur_runner and base_runner:
        b_sp, c_sp = base_runner["speedup"], cur_runner["speedup"]
        sp_delta = (c_sp - b_sp) / b_sp
        print(f"runner speedup (--jobs {cur_runner.get('jobs', '?')}, "
              f"{cur_runner.get('host_cpus', '?')} host cpus): "
              f"{c_sp:.2f}x vs baseline {b_sp:.2f}x ({sp_delta:+.1%})")
        if sp_delta < -args.runner_band:
            warnings.append(
                f"runner.speedup {c_sp:.2f}x dropped {sp_delta:+.1%} vs baseline "
                f"{b_sp:.2f}x (warn band -{args.runner_band:.0%}; warn-only — "
                "shared runners do not promise cores)")
    elif base_runner and not cur_runner:
        warnings.append("runner section missing from current run (unchecked)")

    print("| policy | acc/s base | acc/s now | delta | hit base | hit now |")
    print("|---|---|---|---|---|---|")
    for name, b_aps, c_aps, delta, b_hr, c_hr in rows:
        print(f"| {name} | {b_aps:,.0f} | {c_aps:,.0f} | {delta:+.1%} "
              f"| {b_hr:.1%} | {c_hr:.1%} |")
    print()
    for w in warnings:
        print(f"WARNING: {w}")
    for f in failures:
        print(f"FAIL: {f}")
    if failures:
        print(f"\nthroughput gate FAILED ({len(failures)} failure(s))")
        return 1
    print(f"\nthroughput gate passed ({len(warnings)} warning(s); "
          f"acc/s tolerance -{args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
